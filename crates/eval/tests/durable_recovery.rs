//! Crash recovery for [`DurableMaterialized`]: the kill-and-recover sweep.
//!
//! Every semantics the handle maintains is a deterministic function of the
//! EDB — the paper's central observation — which gives these tests an
//! unusually strong oracle: a recovered handle must be **bit-identical**
//! (dense tuple order included, via [`dense_fingerprint`]) to the pre-crash
//! handle, and set-identical to a from-scratch recompute over the recovered
//! database. The suite drives:
//!
//! * create → churn → reopen round trips on all four engines;
//! * an in-process failpoint sweep over **every** registered store site,
//!   asserting that recovery either restores the last committed epoch
//!   exactly or fails with a typed [`StoreError`] naming the corrupt
//!   offset — never a wrong answer — and that a recovered handle accepts
//!   further updates;
//! * randomized churn with a simulated crash after every k-th WAL record;
//! * a subprocess kill-and-recover pass: a child process churns in a store
//!   directory and `abort()`s (at an injected fault or between commits),
//!   then the parent recovers the directory and checks it against a replay
//!   of the child's acknowledged prefix.

use inflog_core::graphs::DiGraph;
use inflog_core::{Database, Tuple};
use inflog_eval::durable::{dense_fingerprint, DurableMaterialized, DurableOpts};
use inflog_eval::materialize::{Engine, MaterializeOpts, Materialized};
use inflog_eval::{
    inflationary, least_fixpoint_seminaive, stratified_eval, well_founded, EvalError,
};
use inflog_store::{
    fsck, Failpoints, StoreError, SITE_COMPACT_TRUNCATE, SITE_SNAPSHOT_RENAME,
    SITE_WAL_APPEND_SYNC, SITE_WAL_BIT_FLIP, SITE_WAL_TORN_WRITE, SITE_WAL_TRUNCATED_TAIL,
    STORE_FAILPOINT_SITES,
};
use inflog_syntax::{parse_program, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::path::PathBuf;

const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
const WIN: &str = "Win(x) :- Move(x, y), !Win(y).";
const REACH_UNREACH: &str = "
    Reach(y) :- Start(x), E(x, y).
    Reach(y) :- Reach(x), E(x, y).
    Unreach(x) :- V(x), !Reach(x).
";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One engine workload: program, churned relation, database.
fn workloads() -> Vec<(&'static str, &'static str, Database, Engine)> {
    let mut rng = StdRng::seed_from_u64(41);
    let reach_db = {
        let mut db = DiGraph::path(5).to_database("E");
        for v in ["v0", "v1", "v2", "v3", "v4"] {
            db.insert_named_fact("V", &[v]).unwrap();
        }
        db.insert_named_fact("Start", &["v0"]).unwrap();
        db
    };
    vec![
        (
            TC,
            "E",
            DiGraph::path(6).to_database("E"),
            Engine::Seminaive,
        ),
        (REACH_UNREACH, "E", reach_db, Engine::Stratified),
        (
            TC,
            "E",
            DiGraph::random_gnp(6, 0.25, &mut rng).to_database("E"),
            Engine::Inflationary,
        ),
        (
            WIN,
            "Move",
            DiGraph::cycle(5).to_database("Move"),
            Engine::WellFounded,
        ),
    ]
}

/// Set-level oracle: the handle equals a from-scratch evaluation of its
/// engine over its current database.
fn assert_matches_recompute(m: &Materialized, program: &Program, ctx: &str) {
    let db = m.database();
    match m.engine() {
        Engine::Seminaive => {
            let (s, _) = least_fixpoint_seminaive(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: seminaive diverged");
        }
        Engine::Stratified => {
            let (s, _) = stratified_eval(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: stratified diverged");
        }
        Engine::Inflationary => {
            let (s, _) = inflationary(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: inflationary diverged");
        }
        Engine::WellFounded => {
            let model = well_founded(program, db).unwrap();
            assert_eq!(*m.interp(), model.true_facts, "{ctx}: wf diverged");
            assert_eq!(*m.undefined(), model.undefined, "{ctx}: wf undefined");
        }
    }
}

fn flip(dm: &mut DurableMaterialized, rel: &str, t: Tuple) -> usize {
    if dm.handle().contains(rel, &t) {
        dm.retract(&[(rel, t)]).unwrap()
    } else {
        dm.insert(&[(rel, t)]).unwrap()
    }
}

#[test]
fn create_open_round_trip_all_engines() {
    for (src, rel, db, engine) in workloads() {
        let program = parse_program(src).unwrap();
        let dir = tmp_dir(&format!("round_trip_{engine:?}"));
        let opts = DurableOpts {
            engine,
            ..DurableOpts::default()
        };
        let mut dm = DurableMaterialized::create(&program, &db, &dir, &opts).unwrap();
        let n = db.universe_size() as u32;
        let mut rng = StdRng::seed_from_u64(engine as u64 + 5);
        for _ in 0..6 {
            let t = Tuple::from_ids(&[rng.gen_range(0..n), rng.gen_range(0..n)]);
            flip(&mut dm, rel, t);
        }
        let pre_epoch = dm.epoch();
        let pre_fp = dense_fingerprint(dm.handle());
        drop(dm);

        let mut dm = DurableMaterialized::open(&program, &dir, &opts).unwrap();
        assert_eq!(dm.epoch(), pre_epoch, "{engine:?}");
        assert_eq!(
            dense_fingerprint(dm.handle()),
            pre_fp,
            "{engine:?}: recovery is not bit-identical"
        );
        assert_matches_recompute(dm.handle(), &program, &format!("{engine:?} after open"));

        // The recovered handle stays live: more churn, then compaction, then
        // another recovery.
        for _ in 0..3 {
            let t = Tuple::from_ids(&[rng.gen_range(0..n), rng.gen_range(0..n)]);
            flip(&mut dm, rel, t);
        }
        dm.compact().unwrap();
        assert_eq!(dm.snapshot_epoch(), dm.epoch(), "{engine:?}");
        let pre_epoch = dm.epoch();
        let pre_fp = dense_fingerprint(dm.handle());
        drop(dm);
        let dm = DurableMaterialized::open(&program, &dir, &opts).unwrap();
        assert_eq!(dm.epoch(), pre_epoch, "{engine:?} post-compact");
        assert_eq!(
            dense_fingerprint(dm.handle()),
            pre_fp,
            "{engine:?} post-compact"
        );
    }
}

#[test]
fn no_op_batches_commit_epochs_and_replay() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(4).to_database("E");
    let dir = tmp_dir("no_op_epochs");
    let opts = DurableOpts::default();
    let mut dm = DurableMaterialized::create(&program, &db, &dir, &opts).unwrap();
    let present = Tuple::from_ids(&[0, 1]);
    // Inserting a present fact changes nothing but still commits an epoch:
    // the WAL record count must equal the epoch delta.
    assert_eq!(dm.insert(&[("E", present.clone())]).unwrap(), 0);
    assert_eq!(dm.retract(&[("E", Tuple::from_ids(&[0, 3]))]).unwrap(), 0);
    assert_eq!(dm.epoch(), 2);
    drop(dm);
    let dm = DurableMaterialized::open(&program, &dir, &opts).unwrap();
    assert_eq!(dm.epoch(), 2);
    assert_matches_recompute(dm.handle(), &program, "after no-op replay");
}

/// The in-process sweep body: set up committed state, re-open the directory
/// with `fp` armed at `site`, provoke the crash window, and verify recovery
/// restores the last committed epoch bit-identically — or fails with a typed
/// corrupt-frame error — and that a recovered handle accepts further updates.
fn sweep_site(site: &str, fp: Failpoints) {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(5).to_database("E");
    let dir = tmp_dir(&format!("sweep_{site}"));
    let clean = DurableOpts::default();
    let mut dm = DurableMaterialized::create(&program, &db, &dir, &clean).unwrap();
    dm.insert(&[("E", Tuple::from_ids(&[0, 2]))]).unwrap();
    dm.retract(&[("E", Tuple::from_ids(&[1, 2]))]).unwrap();
    let pre_epoch = dm.epoch();
    let pre_fp = dense_fingerprint(dm.handle());
    drop(dm);

    // Re-open with the failpoint armed (recovery itself appends nothing, so
    // the site cannot fire early), then provoke it.
    let armed = DurableOpts {
        store_failpoints: fp,
        ..DurableOpts::default()
    };
    let mut dm = DurableMaterialized::open(&program, &dir, &armed).unwrap();
    assert_eq!(dm.epoch(), pre_epoch);
    let next = ("E", Tuple::from_ids(&[2, 0]));

    match site {
        s if s == SITE_WAL_TORN_WRITE || s == SITE_WAL_TRUNCATED_TAIL => {
            // The append dies mid-frame: typed error, memory untouched, log
            // poisoned until recovery.
            let err = dm.insert(std::slice::from_ref(&next)).unwrap_err();
            assert!(
                matches!(
                    &err,
                    EvalError::Store {
                        source: StoreError::FaultInjected { .. }
                    }
                ),
                "{site}: {err:?}"
            );
            assert_eq!(
                dm.epoch(),
                pre_epoch,
                "{site}: epoch advanced past a failed append"
            );
            assert_eq!(
                dense_fingerprint(dm.handle()),
                pre_fp,
                "{site}: memory changed"
            );
            assert!(dm.is_poisoned(), "{site}");
            let err = dm.insert(std::slice::from_ref(&next)).unwrap_err();
            assert!(
                matches!(
                    &err,
                    EvalError::Store {
                        source: StoreError::Poisoned { .. }
                    }
                ),
                "{site}: {err:?}"
            );
            drop(dm);
            // Recovery truncates the torn tail: last committed epoch, bit-identical.
            let dm = recover_expecting(&program, &dir, pre_epoch, &pre_fp, site);
            accepts_updates(dm, &program, next, site);
        }
        s if s == SITE_WAL_APPEND_SYNC => {
            // The record is fully written but never fsynced or acknowledged:
            // recovery may legitimately replay it, and here (same filesystem,
            // no real power loss) it will.
            let err = dm.insert(std::slice::from_ref(&next)).unwrap_err();
            assert!(
                matches!(
                    &err,
                    EvalError::Store {
                        source: StoreError::FaultInjected { .. }
                    }
                ),
                "{site}: {err:?}"
            );
            assert_eq!(dm.epoch(), pre_epoch, "{site}");
            assert_eq!(
                dense_fingerprint(dm.handle()),
                pre_fp,
                "{site}: memory changed"
            );
            drop(dm);
            let dm = DurableMaterialized::open(&program, &dir, &DurableOpts::default()).unwrap();
            assert_eq!(
                dm.epoch(),
                pre_epoch + 1,
                "{site}: the durable record replays"
            );
            assert!(dm.handle().contains(next.0, &next.1), "{site}");
            assert_matches_recompute(dm.handle(), &program, site);
            accepts_updates(dm, &program, ("E", Tuple::from_ids(&[3, 0])), site);
        }
        s if s == SITE_WAL_BIT_FLIP => {
            // Silent media corruption: the update "succeeds"...
            dm.insert(std::slice::from_ref(&next)).unwrap();
            assert_eq!(dm.epoch(), pre_epoch + 1);
            drop(dm);
            // ...and recovery refuses with the corrupt frame's offset rather
            // than serving a wrong answer.
            let err =
                DurableMaterialized::open(&program, &dir, &DurableOpts::default()).unwrap_err();
            let EvalError::Store {
                source: StoreError::CorruptFrame { offset, .. },
            } = &err
            else {
                panic!("{site}: expected CorruptFrame, got {err:?}");
            };
            assert!(*offset > 0, "{site}");
            // fsck names the same first corrupt offset.
            let report = fsck(&dir).unwrap();
            match report.first_error() {
                Some(StoreError::CorruptFrame {
                    offset: fsck_off, ..
                }) => {
                    assert_eq!(fsck_off, offset, "{site}")
                }
                other => panic!("{site}: fsck saw {other:?}"),
            }
        }
        s if s == SITE_SNAPSHOT_RENAME => {
            // Compaction dies between tmp-write and rename: the old world is
            // intact and the handle itself stays usable.
            let err = dm.compact().unwrap_err();
            assert!(
                matches!(
                    &err,
                    EvalError::Store {
                        source: StoreError::FaultInjected { .. }
                    }
                ),
                "{site}: {err:?}"
            );
            assert_eq!(dm.epoch(), pre_epoch, "{site}");
            dm.insert(std::slice::from_ref(&next)).unwrap();
            drop(dm);
            let dm = DurableMaterialized::open(&program, &dir, &DurableOpts::default()).unwrap();
            assert_eq!(dm.epoch(), pre_epoch + 1, "{site}");
            assert_matches_recompute(dm.handle(), &program, site);
            accepts_updates(dm, &program, ("E", Tuple::from_ids(&[3, 0])), site);
        }
        s if s == SITE_COMPACT_TRUNCATE => {
            // Compaction dies after the new snapshot is in place but before
            // the WAL reset: recovery must skip the records the snapshot
            // already contains.
            let err = dm.compact().unwrap_err();
            assert!(
                matches!(
                    &err,
                    EvalError::Store {
                        source: StoreError::FaultInjected { .. }
                    }
                ),
                "{site}: {err:?}"
            );
            dm.insert(std::slice::from_ref(&next)).unwrap();
            let fp_after = dense_fingerprint(dm.handle());
            drop(dm);
            let dm = recover_expecting(&program, &dir, pre_epoch + 1, &fp_after, site);
            accepts_updates(dm, &program, ("E", Tuple::from_ids(&[3, 0])), site);
        }
        other => panic!("unregistered store site {other:?} in sweep"),
    }
}

fn recover_expecting(
    program: &Program,
    dir: &std::path::Path,
    epoch: u64,
    fp: &[(String, Vec<Tuple>)],
    ctx: &str,
) -> DurableMaterialized {
    let dm = DurableMaterialized::open(program, dir, &DurableOpts::default()).unwrap();
    assert_eq!(dm.epoch(), epoch, "{ctx}: wrong recovered epoch");
    assert_eq!(
        dense_fingerprint(dm.handle()),
        fp,
        "{ctx}: recovery is not bit-identical"
    );
    assert_matches_recompute(dm.handle(), program, ctx);
    dm
}

fn accepts_updates(mut dm: DurableMaterialized, program: &Program, fact: (&str, Tuple), ctx: &str) {
    flip(&mut dm, fact.0, fact.1);
    assert_matches_recompute(
        dm.handle(),
        program,
        &format!("{ctx}: post-recovery update"),
    );
}

#[test]
fn store_failpoint_sweep_every_site() {
    for site in STORE_FAILPOINT_SITES {
        sweep_site(site, Failpoints::armed(site, 1));
    }
}

/// Env-driven form for CI: `INFLOG_FAILPOINT=<store site> cargo test
/// env_driven_store_site -- --ignored` runs the same sweep body with the
/// arming parsed from the environment, proving the env plumbing end to end.
#[test]
#[ignore]
fn env_driven_store_site() {
    let fp = Failpoints::from_env();
    assert!(
        fp.is_armed(),
        "run with INFLOG_FAILPOINT set to a store site"
    );
    let site = fp.site().unwrap().to_string();
    sweep_site(&site, fp);
}

#[test]
fn randomized_churn_with_crash_every_kth_record() {
    const K: usize = 3;
    const STEPS: usize = 12;
    for (src, rel, db, engine) in workloads() {
        let program = parse_program(src).unwrap();
        let dir = tmp_dir(&format!("churn_crash_{engine:?}"));
        let opts = DurableOpts {
            engine,
            ..DurableOpts::default()
        };
        let mut dm = DurableMaterialized::create(&program, &db, &dir, &opts).unwrap();
        // A shadow in-memory handle receives the same updates and never
        // crashes: after each recovery the durable handle must match it down
        // to dense tuple order.
        let mopts = MaterializeOpts {
            engine,
            ..MaterializeOpts::default()
        };
        let mut shadow = Materialized::new(&program, &db, &mopts).unwrap();
        let n = db.universe_size() as u32;
        let mut rng = StdRng::seed_from_u64(engine as u64 * 100 + 9);
        for step in 1..=STEPS {
            let t = Tuple::from_ids(&[rng.gen_range(0..n), rng.gen_range(0..n)]);
            flip(&mut dm, rel, t.clone());
            if shadow.contains(rel, &t) {
                shadow.retract(&[(rel, t)]).unwrap();
            } else {
                shadow.insert(&[(rel, t)]).unwrap();
            }
            if step == STEPS / 2 {
                // Compaction mid-churn: recovery must work from the fresh
                // snapshot too.
                dm.compact().unwrap();
            }
            if step % K == 0 {
                // Simulated crash: drop the handle (all acknowledged records
                // are on disk under Durability::Sync) and recover.
                let epoch = dm.epoch();
                drop(dm);
                dm = DurableMaterialized::open(&program, &dir, &opts).unwrap();
                let ctx = format!("{engine:?} step {step}");
                assert_eq!(dm.epoch(), epoch, "{ctx}");
                assert_eq!(
                    dense_fingerprint(dm.handle()),
                    dense_fingerprint(&shadow),
                    "{ctx}: recovered handle diverged from the uncrashed shadow"
                );
                assert_matches_recompute(dm.handle(), &program, &ctx);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Subprocess kill-and-recover: the child really dies (abort), the parent
// recovers the directory it left behind.
// ---------------------------------------------------------------------------

/// Deterministic churn fact for step `i` over a `n`-constant universe: both
/// the child and the parent's replay derive the same sequence.
fn churn_fact(i: u64, n: u32) -> Tuple {
    let a = ((i as u32) * 7 + 1) % n;
    let b = ((i as u32) * 3 + 2) % n;
    Tuple::from_ids(&[a, b])
}

const CHILD_STEPS: u64 = 12;
const CHILD_COMPACT_AT: u64 = 5;

/// Child mode: churn a store directory and abort — at the injected fault if
/// `INFLOG_FAILPOINT` names a store site, or after [`CHILD_STEPS`] commits.
/// Not a real test: inert unless the parent set `INFLOG_CRASH_DIR`.
#[test]
#[ignore]
fn subprocess_child_runner() {
    let Ok(dir) = std::env::var("INFLOG_CRASH_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(6).to_database("E");
    let mut out = std::io::stdout();
    // Create clean, then re-open with the env-armed failpoints: arming from
    // the start would fire snapshot sites inside `create` itself, before
    // there is any committed state to recover.
    let dm = DurableMaterialized::create(&program, &db, &dir, &DurableOpts::default()).unwrap();
    writeln!(out, "acked {}", dm.epoch()).unwrap();
    out.flush().unwrap();
    drop(dm);
    let opts = DurableOpts {
        store_failpoints: Failpoints::from_env(),
        ..DurableOpts::default()
    };
    let mut dm = DurableMaterialized::open(&program, &dir, &opts).unwrap();
    let n = db.universe_size() as u32;
    for i in 1..=CHILD_STEPS {
        let t = churn_fact(i, n);
        let r = if dm.handle().contains("E", &t) {
            dm.retract(&[("E", t)])
        } else {
            dm.insert(&[("E", t)])
        };
        if r.is_err() {
            // The injected fault fired mid-append: die on the spot, leaving
            // the crash-shaped disk state for the parent.
            std::process::abort();
        }
        writeln!(out, "acked {}", dm.epoch()).unwrap();
        out.flush().unwrap();
        if i == CHILD_COMPACT_AT && dm.compact().is_err() {
            std::process::abort();
        }
    }
    // Kill between commits: no cleanup, no orderly shutdown.
    std::process::abort();
}

#[test]
fn subprocess_kill_and_recover_sweep() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(6).to_database("E");
    let n = db.universe_size() as u32;
    let exe = std::env::current_exe().unwrap();

    let mut cases: Vec<Option<&str>> = vec![None];
    cases.extend(STORE_FAILPOINT_SITES.iter().map(|s| Some(*s)));
    for site in cases {
        let label = site.unwrap_or("clean-kill");
        let dir = tmp_dir(&format!("subprocess_{label}"));
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("subprocess_child_runner")
            .arg("--exact")
            .arg("--ignored")
            .arg("--nocapture")
            .env("INFLOG_CRASH_DIR", &dir);
        match site {
            // The bit-flip must land *after* the child's compaction (which
            // rewrites the log from correct in-memory state and would wash
            // the corrupt frame away): arm it at the 8th append.
            Some(s) if s == SITE_WAL_BIT_FLIP => {
                cmd.env("INFLOG_FAILPOINT", format!("{s}:8"));
            }
            Some(s) => {
                cmd.env("INFLOG_FAILPOINT", s);
            }
            None => {
                cmd.env_remove("INFLOG_FAILPOINT");
            }
        }
        let output = cmd.output().unwrap();
        assert!(
            !output.status.success(),
            "{label}: the child is supposed to die, got {output:?}"
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        // The libtest harness prints `test <name> ... ` without a newline,
        // so the first ack can share its line — match by substring.
        let last_acked: u64 = stdout
            .lines()
            .filter_map(|l| l.find("acked ").map(|i| &l[i + 6..]))
            .filter_map(|v| v.trim().parse().ok())
            .next_back()
            .unwrap_or_else(|| panic!("{label}: child acked nothing:\n{stdout}"));

        if site == Some(SITE_WAL_BIT_FLIP) {
            // Silent corruption: recovery must refuse with the frame offset.
            let err =
                DurableMaterialized::open(&program, &dir, &DurableOpts::default()).unwrap_err();
            assert!(
                matches!(
                    &err,
                    EvalError::Store {
                        source: StoreError::CorruptFrame { .. }
                    }
                ),
                "{label}: {err:?}"
            );
            assert!(fsck(&dir).unwrap().first_error().is_some(), "{label}");
            continue;
        }

        let mut dm = DurableMaterialized::open(&program, &dir, &DurableOpts::default())
            .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
        // Acknowledged updates are never lost; at most the one in-flight
        // record (fully written, unacknowledged) may additionally survive.
        assert!(
            dm.epoch() == last_acked || dm.epoch() == last_acked + 1,
            "{label}: recovered epoch {} vs last acked {last_acked}",
            dm.epoch()
        );
        if site != Some(SITE_WAL_APPEND_SYNC) {
            assert_eq!(dm.epoch(), last_acked, "{label}: phantom record");
        }

        // Replay the child's deterministic update sequence into a shadow
        // handle and demand dense bit-identity with the recovery.
        let mut shadow = Materialized::new(&program, &db, &MaterializeOpts::default()).unwrap();
        for i in 1..=dm.epoch() {
            let t = churn_fact(i, n);
            if shadow.contains("E", &t) {
                shadow.retract(&[("E", t)]).unwrap();
            } else {
                shadow.insert(&[("E", t)]).unwrap();
            }
        }
        assert_eq!(
            dense_fingerprint(dm.handle()),
            dense_fingerprint(&shadow),
            "{label}: recovery diverged from the acknowledged prefix"
        );
        assert_matches_recompute(dm.handle(), &program, label);
        // And the recovered handle is immediately usable.
        flip(&mut dm, "E", churn_fact(99, n));
        assert_matches_recompute(dm.handle(), &program, &format!("{label}: post-recovery"));
    }
}
