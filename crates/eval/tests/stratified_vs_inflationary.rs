//! Unit tests at the engine layer for the paper's §4 motivating point:
//! stratified semantics is a *partial* function of programs (undefined as
//! soon as recursion passes through negation), while the inflationary
//! fixpoint Θ̃ is defined for **every** DATALOG¬ program — and where both
//! are defined they need not agree.

use inflog_core::graphs::DiGraph;
use inflog_eval::{
    apply, inflationary, inflationary_naive, stratified_eval, stratify, CompiledProgram,
    EvalContext, EvalError,
};
use inflog_syntax::parse_program;

/// Programs with recursion through negation, from the paper (§2 π₁) and
/// the classic win-move game the §4 discussion generalises.
fn non_stratifiable_cases() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("pi1", "T(x) :- E(y, x), !T(y).", "E"),
        ("win-move", "Win(x) :- E(x, y), !Win(y).", "E"),
        (
            "mutual",
            "A(x) :- E(x, y), !B(x). B(x) :- E(x, y), !A(x).",
            "E",
        ),
    ]
}

#[test]
fn stratification_rejects_recursion_through_negation() {
    for (name, src, _) in non_stratifiable_cases() {
        let program = parse_program(src).unwrap();
        assert!(
            matches!(stratify(&program), Err(EvalError::NotStratified { .. })),
            "{name}: stratify must report NotStratified"
        );
    }
}

#[test]
fn stratified_eval_is_undefined_but_inflationary_is_total() {
    for (name, src, edb) in non_stratifiable_cases() {
        let program = parse_program(src).unwrap();
        for g in [DiGraph::path(4), DiGraph::cycle(3), DiGraph::cycle(4)] {
            let db = g.to_database(edb);
            assert!(
                matches!(
                    stratified_eval(&program, &db),
                    Err(EvalError::NotStratified { .. })
                ),
                "{name}: stratified_eval must refuse the program"
            );
            // The inflationary fixpoint always exists (§4): both iteration
            // styles terminate, agree, and land on an inflationary fixpoint,
            // i.e. one more application of Θ adds nothing new.
            let (inf, trace) = inflationary(&program, &db).unwrap();
            let (inf2, trace2) = inflationary_naive(&program, &db).unwrap();
            assert_eq!(inf, inf2, "{name}: semi-naive vs naive inflationary");
            assert_eq!(trace.rounds, trace2.rounds, "{name}: round counts");
            let cp = CompiledProgram::compile(&program, &db).unwrap();
            let ctx = EvalContext::new(&cp, &db).unwrap();
            assert!(
                apply(&cp, &ctx, &inf).is_subset(&inf),
                "{name}: Θ(S) ⊆ S at the inflationary fixpoint"
            );
        }
    }
}

#[test]
fn inflationary_is_defined_even_where_no_classical_fixpoint_exists() {
    // π₁ on an odd cycle has *no* fixpoint of Θ at all (§2), yet the
    // inflationary fixpoint exists: every vertex has a predecessor, so
    // T̃ = A after one round, and Θ(A) = ∅ ⊆ A.
    let program = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
    let g = DiGraph::cycle(5);
    let db = g.to_database("E");
    let (inf, trace) = inflationary(&program, &db).unwrap();
    assert_eq!(
        trace.added_per_round,
        vec![5],
        "round 1 saturates T̃ in one step"
    );
    let cp = CompiledProgram::compile(&program, &db).unwrap();
    let t = cp.idb_id("T").unwrap();
    assert_eq!(inf.get(t).len(), 5, "T̃ = all vertices of C_5");
}

#[test]
fn divergence_on_a_program_where_both_are_defined() {
    // The §4 distance program is stratifiable; on a cycle the stratified
    // reading of S3 (TC ∧ ¬TC) is empty while the inflationary reading
    // (the distance query) is not. Divergence without undefinedness.
    let program = parse_program(
        "
        S1(x, y) :- E(x, y).
        S1(x, y) :- E(x, z), S1(z, y).
        S2(u, v) :- E(u, v).
        S2(u, v) :- E(u, w), S2(w, v).
        S3(x, y, u, v) :- E(x, y), !S2(u, v).
        S3(x, y, u, v) :- E(x, z), S1(z, y), !S2(u, v).
        ",
    )
    .unwrap();
    assert!(
        stratify(&program).is_ok(),
        "the distance program is stratifiable"
    );
    let db = DiGraph::cycle(4).to_database("E");
    let (strat, _) = stratified_eval(&program, &db).unwrap();
    let (inf, _) = inflationary(&program, &db).unwrap();
    let cp = CompiledProgram::compile(&program, &db).unwrap();
    let s3 = cp.idb_id("S3").unwrap();
    assert!(
        strat.get(s3).is_empty(),
        "stratified: TC ∧ ¬TC on C_4 is empty"
    );
    assert!(
        !inf.get(s3).is_empty(),
        "inflationary: distance query is non-empty"
    );
    assert_ne!(strat, inf, "the two semantics diverge on C_4");
}
