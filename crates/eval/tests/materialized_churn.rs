//! Randomized insert/retract churn over [`Materialized`] handles.
//!
//! The non-negotiable invariant of incremental view maintenance: after
//! *any* sequence of single-fact and batch updates, the handle's state —
//! true facts and undefined sets — is identical to evaluating the program
//! from scratch over the current database, for every engine. Debug builds
//! additionally assert this inside the handle after every update; these
//! tests pin it explicitly (so release runs check it too), across fixed
//! seeds, graph families (paths, cycles, G(n,p)), engines, and the edge
//! cases the issue calls out: deletions that empty a relation,
//! re-insertion of retracted facts, and retracting facts that were never
//! present.
//!
//! The second half drives the **transactional invariant** under forced
//! failures: a failpoint sweep that aborts a repair at every registered
//! injection site — in both update directions, on every engine — and
//! asserts the handle rolls back bit-identically and accepts the retried
//! batch; plus cross-thread cancellation, deadline, and round/tuple budget
//! coverage on deliberately slow programs.

use inflog_core::graphs::DiGraph;
use inflog_core::{Database, Tuple};
use inflog_eval::govern::SITE_WORKER_PANIC;
use inflog_eval::materialize::{Engine, MaterializeOpts, Materialized};
use inflog_eval::{
    inflationary, inflationary_with, least_fixpoint_naive_with, least_fixpoint_seminaive,
    least_fixpoint_seminaive_with, stratified_eval, stratified_eval_with, well_founded,
    well_founded_with, Budget, BudgetKind, CancelToken, EvalError, EvalOptions, Failpoints,
    QueryOpts, FAILPOINT_SITES,
};
use inflog_syntax::{parse_program, Atom, Program, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Duration;

const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
const WIN: &str = "Win(x) :- Move(x, y), !Win(y).";
const REACH_UNREACH: &str = "
    Reach(y) :- Start(x), E(x, y).
    Reach(y) :- Reach(x), E(x, y).
    Unreach(x) :- V(x), !Reach(x).
";

fn handle(program: &Program, db: &Database, engine: Engine) -> Materialized {
    let opts = MaterializeOpts {
        engine,
        ..MaterializeOpts::default()
    };
    Materialized::new(program, db, &opts).unwrap()
}

/// Asserts the handle equals a from-scratch evaluation of its engine over
/// its current database.
fn assert_matches_recompute(m: &Materialized, program: &Program, ctx: &str) {
    let db = m.database();
    match m.engine() {
        Engine::Seminaive => {
            let (s, _) = least_fixpoint_seminaive(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: seminaive diverged");
            assert!(m.undefined().all_empty(), "{ctx}");
        }
        Engine::Stratified => {
            let (s, _) = stratified_eval(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: stratified diverged");
            assert!(m.undefined().all_empty(), "{ctx}");
        }
        Engine::Inflationary => {
            let (s, _) = inflationary(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: inflationary diverged");
            assert!(m.undefined().all_empty(), "{ctx}");
        }
        Engine::WellFounded => {
            let model = well_founded(program, db).unwrap();
            assert_eq!(*m.interp(), model.true_facts, "{ctx}: wf diverged");
            assert_eq!(*m.undefined(), model.undefined, "{ctx}: wf undefined");
        }
    }
}

/// Flips random edges of `edge_rel` for `steps` rounds — retract when
/// present, insert when absent, occasionally as a no-op in the opposite
/// direction — checking the handle against a recompute at every step.
fn churn(src: &str, edge_rel: &str, db: &Database, engine: Engine, seed: u64, steps: usize) {
    let program = parse_program(src).unwrap();
    let mut m = handle(&program, db, engine);
    let n = db.universe_size() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..steps {
        let t = Tuple::from_ids(&[rng.gen_range(0..n), rng.gen_range(0..n)]);
        let present = m.contains(edge_rel, &t);
        if rng.gen_range(0u32..8) == 0 {
            // Deliberate no-op: insert a present fact / retract an absent
            // one must change nothing.
            let changed = if present {
                m.insert(&[(edge_rel, t)]).unwrap()
            } else {
                m.retract(&[(edge_rel, t)]).unwrap()
            };
            assert_eq!(changed, 0, "{src} step {step}");
        } else if present {
            assert_eq!(m.retract(&[(edge_rel, t)]).unwrap(), 1);
        } else {
            assert_eq!(m.insert(&[(edge_rel, t)]).unwrap(), 1);
        }
        assert_matches_recompute(&m, &program, &format!("engine {engine:?} step {step}"));
    }
}

#[test]
fn tc_churn_every_engine_on_paths_cycles_and_gnp() {
    let mut rng = StdRng::seed_from_u64(7);
    let dbs = [
        DiGraph::path(6).to_database("E"),
        DiGraph::cycle(5).to_database("E"),
        DiGraph::random_gnp(7, 0.2, &mut rng).to_database("E"),
    ];
    for (g, db) in dbs.iter().enumerate() {
        for engine in [
            Engine::Seminaive,
            Engine::Stratified,
            Engine::Inflationary,
            Engine::WellFounded,
        ] {
            churn(TC, "E", db, engine, 100 + g as u64, 12);
        }
    }
}

#[test]
fn stratified_negation_churn_across_capable_engines() {
    // Reach/Unreach exercises both repair directions through negation:
    // lower-stratum additions kill Unreach facts, removals resurrect them.
    let mut db = DiGraph::path(6).to_database("E");
    for v in 0..6 {
        db.insert_named_fact("V", &[&format!("v{v}")]).unwrap();
    }
    db.insert_named_fact("Start", &["v0"]).unwrap();
    for engine in [
        Engine::Stratified,
        Engine::Inflationary,
        Engine::WellFounded,
    ] {
        churn(REACH_UNREACH, "E", &db, engine, 11, 12);
    }
}

#[test]
fn win_move_churn_on_nonstratified_engines() {
    let mut rng = StdRng::seed_from_u64(3);
    for db in [
        DiGraph::path(5).to_database("Move"),
        DiGraph::random_gnp(6, 0.25, &mut rng).to_database("Move"),
    ] {
        for engine in [Engine::Inflationary, Engine::WellFounded] {
            churn(WIN, "Move", &db, engine, 29, 10);
        }
    }
}

#[test]
fn emptying_a_relation_and_reinserting_roundtrips() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::cycle(5).to_database("E");
    let edges: Vec<Tuple> = db.relation("E").unwrap().sorted();
    for engine in [
        Engine::Seminaive,
        Engine::Stratified,
        Engine::Inflationary,
        Engine::WellFounded,
    ] {
        let mut m = handle(&program, &db, engine);
        // Drain the relation one fact at a time, checking at every step
        // (the last retraction leaves the IDB empty).
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(m.retract(&[("E", e.clone())]).unwrap(), 1);
            assert_matches_recompute(&m, &program, &format!("{engine:?} drain {i}"));
        }
        assert!(m.interp().all_empty());
        assert!(m.database().relation("E").unwrap().is_empty());
        // Re-insert everything as one batch: back to the original model.
        let batch: Vec<(&str, Tuple)> = edges.iter().map(|e| ("E", e.clone())).collect();
        assert_eq!(m.insert(&batch).unwrap(), edges.len());
        assert_matches_recompute(&m, &program, &format!("{engine:?} reinsert"));
        let fresh = handle(&program, &db, engine);
        assert_eq!(m.interp(), fresh.interp());
    }
}

#[test]
fn query_after_update_agrees_with_the_maintained_model() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(6).to_database("E");
    let mut m = handle(&program, &db, Engine::Stratified);
    let sid = m.compiled().idb_id("S").unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..8 {
        let t = Tuple::from_ids(&[rng.gen_range(0..6), rng.gen_range(0..6)]);
        let present = m.contains("E", &t);
        if present {
            m.retract(&[("E", t)]).unwrap();
        } else {
            m.insert(&[("E", t)]).unwrap();
        }
        // Goal S('vK', y) for a random source: the goal-directed answer
        // must match filtering the maintained relation.
        let k = rng.gen_range(0..6);
        let goal = Atom {
            predicate: "S".into(),
            terms: vec![Term::Const(format!("v{k}")), Term::Var("y".into())],
        };
        let ans = m.query(&goal, &QueryOpts::default()).unwrap();
        let src = m.database().universe().lookup(&format!("v{k}")).unwrap();
        let expect: Vec<Tuple> = m
            .interp()
            .get(sid)
            .sorted()
            .iter()
            .filter(|t| t.items()[0] == src)
            .cloned()
            .collect();
        assert_eq!(ans.tuples, expect);
    }
}

#[test]
fn mixed_fact_arities_and_auxiliary_relations_churn() {
    // Churn the *unary* relations of the stratified program too — Start
    // flips who is reachable wholesale, V changes the complement domain.
    let program = parse_program(REACH_UNREACH).unwrap();
    let mut db = DiGraph::path(5).to_database("E");
    for v in 0..5 {
        db.insert_named_fact("V", &[&format!("v{v}")]).unwrap();
    }
    db.insert_named_fact("Start", &["v0"]).unwrap();
    let mut m = handle(&program, &db, Engine::Stratified);
    let mut rng = StdRng::seed_from_u64(41);
    for step in 0..16 {
        let (rel, t) = match rng.gen_range(0u32..3) {
            0 => (
                "E",
                Tuple::from_ids(&[rng.gen_range(0..5), rng.gen_range(0..5)]),
            ),
            1 => ("Start", Tuple::from_ids(&[rng.gen_range(0..5)])),
            _ => ("V", Tuple::from_ids(&[rng.gen_range(0..5)])),
        };
        if m.contains(rel, &t) {
            m.retract(&[(rel, t)]).unwrap();
        } else {
            m.insert(&[(rel, t)]).unwrap();
        }
        assert_matches_recompute(&m, &program, &format!("aux churn step {step}"));
    }
}

// ---------------------------------------------------------------------------
// Fault injection: the transactional invariant under forced failures.
// ---------------------------------------------------------------------------

/// Bit-level snapshot of everything a [`Materialized`] handle owns that an
/// update may touch: the model, the undefined sets, and the database — each
/// relation in **dense (insertion) order**, strictly stronger than the
/// set-based equality the rest of the suite uses.
#[derive(Debug, PartialEq)]
struct Snapshot {
    idb: Vec<Vec<Tuple>>,
    undefined: Vec<Vec<Tuple>>,
    db: Vec<(String, Vec<Tuple>)>,
}

fn snapshot(m: &Materialized) -> Snapshot {
    let schema = m.database().schema();
    let mut db: Vec<(String, Vec<Tuple>)> = schema
        .iter()
        .map(|(name, _)| {
            let dense = m.database().relation(name).unwrap().dense().to_vec();
            (name.to_owned(), dense)
        })
        .collect();
    db.sort();
    Snapshot {
        idb: (0..m.interp().len())
            .map(|i| m.interp().get(i).dense().to_vec())
            .collect(),
        undefined: (0..m.undefined().len())
            .map(|i| m.undefined().get(i).dense().to_vec())
            .collect(),
        db,
    }
}

/// Options arming `site` to fire on its first hit. The worker-panic site
/// only exists inside forked applications, so arming it also forces the
/// parallel path (two workers, zero threshold).
fn armed(site: &str) -> EvalOptions {
    let (threads, parallel_threshold) = if site == SITE_WORKER_PANIC {
        (2, 0)
    } else {
        (1, usize::MAX)
    };
    EvalOptions {
        threads,
        parallel_threshold,
        failpoints: Failpoints::armed(site, 1),
        ..EvalOptions::sequential()
    }
}

/// One engine × program × database combination for the sweep. Covers both
/// repair strategies: delete–rederive (seminaive, stratified, and
/// well-founded on a stratifiable program) and restart (inflationary, and
/// well-founded on `WIN` over an odd cycle — which also exercises rollback
/// of non-empty undefined sets).
struct Workload {
    engine: Engine,
    src: &'static str,
    edge_rel: &'static str,
    db: Database,
}

fn workloads() -> Vec<Workload> {
    let mut reach_db = DiGraph::path(6).to_database("E");
    for v in 0..6 {
        reach_db
            .insert_named_fact("V", &[&format!("v{v}")])
            .unwrap();
    }
    reach_db.insert_named_fact("Start", &["v0"]).unwrap();
    vec![
        Workload {
            engine: Engine::Seminaive,
            src: TC,
            edge_rel: "E",
            db: DiGraph::cycle(5).to_database("E"),
        },
        Workload {
            engine: Engine::Stratified,
            src: REACH_UNREACH,
            edge_rel: "E",
            db: reach_db.clone(),
        },
        Workload {
            engine: Engine::WellFounded,
            src: REACH_UNREACH,
            edge_rel: "E",
            db: reach_db,
        },
        Workload {
            engine: Engine::Inflationary,
            src: TC,
            edge_rel: "E",
            db: DiGraph::cycle(5).to_database("E"),
        },
        Workload {
            engine: Engine::WellFounded,
            src: WIN,
            edge_rel: "Move",
            db: DiGraph::cycle(5).to_database("Move"),
        },
    ]
}

/// The tentpole acceptance test: abort a repair at **every** registered
/// failpoint site, in both update directions, on every engine. A fired
/// failpoint must leave the handle bit-identical to its pre-update state
/// (model, undefined sets, *and* database) and fully usable — the retried
/// batch goes through and lands on the recompute. A site that is not on
/// the update's path (e.g. the overdelete cone during a pure insert) must
/// not disturb a normal update. Every site must fire somewhere in the
/// sweep — a registered site the sweep cannot reach would be dead code.
#[test]
fn failpoint_sweep_rolls_back_every_site_on_every_engine() {
    let mut fired: BTreeSet<&str> = BTreeSet::new();
    for w in &workloads() {
        let program = parse_program(w.src).unwrap();
        for &site in FAILPOINT_SITES {
            for inserting in [false, true] {
                let mut m = handle(&program, &w.db, w.engine);
                let t = if inserting {
                    // Absent in every workload graph (paths and cycles only
                    // have successor edges).
                    Tuple::from_ids(&[0, 2])
                } else {
                    m.database().relation(w.edge_rel).unwrap().dense()[0].clone()
                };
                let dir = if inserting { "insert" } else { "retract" };
                let label = format!("{:?}/{site}/{dir}", w.engine);
                let batch = [(w.edge_rel, t)];
                let pre = snapshot(&m);
                m.set_eval_options(armed(site));
                let result = if inserting {
                    m.insert(&batch)
                } else {
                    m.retract(&batch)
                };
                match result {
                    Err(e) => {
                        fired.insert(site);
                        assert!(
                            matches!(
                                e,
                                EvalError::FaultInjected { .. } | EvalError::WorkerPanic { .. }
                            ),
                            "{label}: unexpected error {e:?}"
                        );
                        assert_eq!(snapshot(&m), pre, "{label}: rollback not bit-identical");
                        // The handle must remain fully usable: disarm and
                        // retry the identical batch.
                        m.set_eval_options(EvalOptions::sequential());
                        let changed = if inserting {
                            m.insert(&batch).unwrap()
                        } else {
                            m.retract(&batch).unwrap()
                        };
                        assert_eq!(changed, 1, "{label}: retried batch rejected");
                    }
                    Ok(changed) => {
                        assert_eq!(changed, 1, "{label}: armed-but-unreached update");
                    }
                }
                assert_matches_recompute(&m, &program, &label);
            }
        }
    }
    for site in FAILPOINT_SITES {
        assert!(
            fired.contains(site),
            "site `{site}` never fired in the sweep"
        );
    }
}

/// A worker panic under forced parallelism is contained: the update returns
/// a typed error instead of aborting the process, and the rollback holds.
#[test]
fn worker_panic_is_contained_and_rolled_back() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::cycle(6).to_database("E");
    let mut m = handle(&program, &db, Engine::Seminaive);
    let pre = snapshot(&m);
    m.set_eval_options(armed(SITE_WORKER_PANIC));
    let edge = db.relation("E").unwrap().dense()[0].clone();
    let err = m.retract(&[("E", edge.clone())]).unwrap_err();
    assert!(
        matches!(err, EvalError::WorkerPanic { .. }),
        "expected a contained panic, got {err:?}"
    );
    assert_eq!(snapshot(&m), pre, "panic rollback not bit-identical");
    m.set_eval_options(EvalOptions::sequential());
    assert_eq!(m.retract(&[("E", edge)]).unwrap(), 1);
    assert_matches_recompute(&m, &program, "retract after contained panic");
}

/// Randomized churn with a rotating armed failpoint and varying trigger
/// counts: whatever mixture of injected failures and clean updates the
/// schedule produces, every step either fully lands or fully rolls back,
/// and a clean retry always reconverges with the recompute.
#[test]
fn randomized_churn_with_rotating_failpoints_keeps_the_invariant() {
    let graph_db = {
        let mut rng = StdRng::seed_from_u64(5);
        DiGraph::random_gnp(7, 0.3, &mut rng).to_database("E")
    };
    let program = parse_program(TC).unwrap();
    for (e, engine) in [
        Engine::Seminaive,
        Engine::Stratified,
        Engine::Inflationary,
        Engine::WellFounded,
    ]
    .into_iter()
    .enumerate()
    {
        let mut m = handle(&program, &graph_db, engine);
        let mut rng = StdRng::seed_from_u64(1000 + e as u64);
        for step in 0..20 {
            let t = Tuple::from_ids(&[rng.gen_range(0..7), rng.gen_range(0..7)]);
            let present = m.contains("E", &t);
            let site = FAILPOINT_SITES[step % FAILPOINT_SITES.len()];
            let trigger = rng.gen_range(1..3);
            let label = format!("{engine:?} step {step} site {site}:{trigger}");
            let pre = snapshot(&m);
            m.set_eval_options(EvalOptions {
                failpoints: Failpoints::armed(site, trigger),
                ..armed(site)
            });
            let result = if present {
                m.retract(&[("E", t.clone())])
            } else {
                m.insert(&[("E", t.clone())])
            };
            m.set_eval_options(EvalOptions::sequential());
            if result.is_err() {
                assert_eq!(snapshot(&m), pre, "{label}: rollback not bit-identical");
                let changed = if present {
                    m.retract(&[("E", t)]).unwrap()
                } else {
                    m.insert(&[("E", t)]).unwrap()
                };
                assert_eq!(changed, 1, "{label}: retry");
            }
            assert_matches_recompute(&m, &program, &label);
        }
    }
}

/// Cancelling from another thread stops an in-flight evaluation with the
/// typed error, and a cancelled token makes a live handle's update roll
/// back — after which a clean configuration accepts the same batch.
#[test]
fn cross_thread_cancellation_stops_evaluation_and_rolls_back_updates() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(200).to_database("E");
    let token = CancelToken::new();
    let opts = EvalOptions {
        cancel: Some(token.clone()),
        ..EvalOptions::sequential()
    };
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            token.cancel();
        })
    };
    // The token is sticky, so this loop always terminates: either the
    // cancellation lands mid-flight, or — once flipped — the next
    // evaluation fails at its very first round boundary.
    let err = loop {
        if let Err(e) = least_fixpoint_seminaive_with(&program, &db, &opts) {
            break e;
        }
    };
    canceller.join().unwrap();
    assert_eq!(err, EvalError::Cancelled);

    let small = DiGraph::cycle(5).to_database("E");
    let mut m = handle(&program, &small, Engine::Seminaive);
    let pre = snapshot(&m);
    let edge = small.relation("E").unwrap().dense()[0].clone();
    m.set_eval_options(EvalOptions {
        cancel: Some(token),
        ..EvalOptions::sequential()
    });
    assert_eq!(
        m.retract(&[("E", edge.clone())]).unwrap_err(),
        EvalError::Cancelled
    );
    assert_eq!(snapshot(&m), pre, "cancellation rollback not bit-identical");
    m.set_eval_options(EvalOptions::sequential());
    assert_eq!(m.retract(&[("E", edge)]).unwrap(), 1);
    assert_matches_recompute(&m, &program, "retract after cancellation rollback");
}

/// A wall-clock deadline trips a deliberately slow program mid-flight. TC
/// on a 200-vertex path runs ~200 semi-naive rounds deriving ~20k tuples —
/// far beyond a 50µs budget on any hardware, so the evaluation cannot
/// finish before the deadline check at a round boundary catches it.
#[test]
fn deadline_budget_trips_a_deliberately_slow_program() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(200).to_database("E");
    let opts = EvalOptions {
        budget: Budget::with_deadline(Duration::from_micros(50)),
        ..EvalOptions::sequential()
    };
    let err = least_fixpoint_seminaive_with(&program, &db, &opts).unwrap_err();
    assert!(
        matches!(
            err,
            EvalError::BudgetExceeded {
                kind: BudgetKind::Deadline,
                ..
            }
        ),
        "expected a deadline trip, got {err:?}"
    );
}

/// Round and tuple caps surface the same typed error from every engine —
/// including naive iteration, whose old ad-hoc `IterationLimit` cap is now
/// routed through `Budget::max_rounds`.
#[test]
fn round_and_tuple_caps_surface_typed_errors_from_every_engine() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(8).to_database("E");
    let rounds = EvalOptions {
        budget: Budget::with_max_rounds(2),
        ..EvalOptions::sequential()
    };
    let errs = [
        least_fixpoint_naive_with(&program, &db, &rounds).map(|_| ()),
        least_fixpoint_seminaive_with(&program, &db, &rounds).map(|_| ()),
        stratified_eval_with(&program, &db, &rounds).map(|_| ()),
        inflationary_with(&program, &db, &rounds).map(|_| ()),
        well_founded_with(&program, &db, &rounds).map(|_| ()),
    ];
    for (i, r) in errs.into_iter().enumerate() {
        assert_eq!(
            r.unwrap_err(),
            EvalError::BudgetExceeded {
                kind: BudgetKind::Rounds,
                limit: 2
            },
            "engine #{i}"
        );
    }
    let tuples = EvalOptions {
        budget: Budget::with_max_tuples(3),
        ..EvalOptions::sequential()
    };
    let errs = [
        least_fixpoint_naive_with(&program, &db, &tuples).map(|_| ()),
        least_fixpoint_seminaive_with(&program, &db, &tuples).map(|_| ()),
        stratified_eval_with(&program, &db, &tuples).map(|_| ()),
        inflationary_with(&program, &db, &tuples).map(|_| ()),
        well_founded_with(&program, &db, &tuples).map(|_| ()),
    ];
    for (i, r) in errs.into_iter().enumerate() {
        assert_eq!(
            r.unwrap_err(),
            EvalError::BudgetExceeded {
                kind: BudgetKind::Tuples,
                limit: 3
            },
            "engine #{i}"
        );
    }
}

/// CI drives this with `INFLOG_FAILPOINT=<site>[:<n>]` in the environment
/// (plus `INFLOG_THREADS`/`INFLOG_PARALLEL_THRESHOLD` for the worker-panic
/// site): [`EvalOptions::default`] picks the armed failpoint up from the
/// environment, the governed update must fail, roll back bit-identically,
/// and accept a clean retry. Ignored by default — it asserts the variable
/// is set.
#[test]
#[ignore = "driven by CI with INFLOG_FAILPOINT set"]
fn env_driven_failpoint_rolls_back_the_update() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::cycle(5).to_database("E");
    // Everything except the update under test must run with *explicit*
    // clean options: `EvalOptions::default()` re-parses `INFLOG_FAILPOINT`
    // on every call (fresh hit counter), so construction and recompute
    // would otherwise trip the armed site themselves.
    let clean = MaterializeOpts {
        engine: Engine::Seminaive,
        eval: EvalOptions::sequential(),
    };
    let mut m = Materialized::new(&program, &db, &clean).unwrap();
    let opts = EvalOptions::default();
    assert!(
        opts.failpoints.is_armed(),
        "set INFLOG_FAILPOINT=<site> to run this test"
    );
    let pre = snapshot(&m);
    m.set_eval_options(opts);
    let edge = db.relation("E").unwrap().dense()[0].clone();
    let err = m.retract(&[("E", edge.clone())]).unwrap_err();
    assert!(
        matches!(
            err,
            EvalError::FaultInjected { .. } | EvalError::WorkerPanic { .. }
        ),
        "unexpected error {err:?}"
    );
    assert_eq!(
        snapshot(&m),
        pre,
        "env failpoint rollback not bit-identical"
    );
    m.set_eval_options(EvalOptions::sequential());
    assert_eq!(m.retract(&[("E", edge)]).unwrap(), 1);
    // Compare against a clean handle over the updated database rather than
    // the env-sensitive recompute helpers.
    let fresh = Materialized::new(&program, m.database(), &clean).unwrap();
    assert_eq!(m.interp(), fresh.interp(), "retry diverged from recompute");
}
