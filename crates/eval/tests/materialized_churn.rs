//! Randomized insert/retract churn over [`Materialized`] handles.
//!
//! The non-negotiable invariant of incremental view maintenance: after
//! *any* sequence of single-fact and batch updates, the handle's state —
//! true facts and undefined sets — is identical to evaluating the program
//! from scratch over the current database, for every engine. Debug builds
//! additionally assert this inside the handle after every update; these
//! tests pin it explicitly (so release runs check it too), across fixed
//! seeds, graph families (paths, cycles, G(n,p)), engines, and the edge
//! cases the issue calls out: deletions that empty a relation,
//! re-insertion of retracted facts, and retracting facts that were never
//! present.

use inflog_core::graphs::DiGraph;
use inflog_core::{Database, Tuple};
use inflog_eval::materialize::{Engine, MaterializeOpts, Materialized};
use inflog_eval::{
    inflationary, least_fixpoint_seminaive, stratified_eval, well_founded, QueryOpts,
};
use inflog_syntax::{parse_program, Atom, Program, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
const WIN: &str = "Win(x) :- Move(x, y), !Win(y).";
const REACH_UNREACH: &str = "
    Reach(y) :- Start(x), E(x, y).
    Reach(y) :- Reach(x), E(x, y).
    Unreach(x) :- V(x), !Reach(x).
";

fn handle(program: &Program, db: &Database, engine: Engine) -> Materialized {
    let opts = MaterializeOpts {
        engine,
        ..MaterializeOpts::default()
    };
    Materialized::new(program, db, &opts).unwrap()
}

/// Asserts the handle equals a from-scratch evaluation of its engine over
/// its current database.
fn assert_matches_recompute(m: &Materialized, program: &Program, ctx: &str) {
    let db = m.database();
    match m.engine() {
        Engine::Seminaive => {
            let (s, _) = least_fixpoint_seminaive(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: seminaive diverged");
            assert!(m.undefined().all_empty(), "{ctx}");
        }
        Engine::Stratified => {
            let (s, _) = stratified_eval(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: stratified diverged");
            assert!(m.undefined().all_empty(), "{ctx}");
        }
        Engine::Inflationary => {
            let (s, _) = inflationary(program, db).unwrap();
            assert_eq!(*m.interp(), s, "{ctx}: inflationary diverged");
            assert!(m.undefined().all_empty(), "{ctx}");
        }
        Engine::WellFounded => {
            let model = well_founded(program, db).unwrap();
            assert_eq!(*m.interp(), model.true_facts, "{ctx}: wf diverged");
            assert_eq!(*m.undefined(), model.undefined, "{ctx}: wf undefined");
        }
    }
}

/// Flips random edges of `edge_rel` for `steps` rounds — retract when
/// present, insert when absent, occasionally as a no-op in the opposite
/// direction — checking the handle against a recompute at every step.
fn churn(src: &str, edge_rel: &str, db: &Database, engine: Engine, seed: u64, steps: usize) {
    let program = parse_program(src).unwrap();
    let mut m = handle(&program, db, engine);
    let n = db.universe_size() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..steps {
        let t = Tuple::from_ids(&[rng.gen_range(0..n), rng.gen_range(0..n)]);
        let present = m.contains(edge_rel, &t);
        if rng.gen_range(0u32..8) == 0 {
            // Deliberate no-op: insert a present fact / retract an absent
            // one must change nothing.
            let changed = if present {
                m.insert(&[(edge_rel, t)]).unwrap()
            } else {
                m.retract(&[(edge_rel, t)]).unwrap()
            };
            assert_eq!(changed, 0, "{src} step {step}");
        } else if present {
            assert_eq!(m.retract(&[(edge_rel, t)]).unwrap(), 1);
        } else {
            assert_eq!(m.insert(&[(edge_rel, t)]).unwrap(), 1);
        }
        assert_matches_recompute(&m, &program, &format!("engine {engine:?} step {step}"));
    }
}

#[test]
fn tc_churn_every_engine_on_paths_cycles_and_gnp() {
    let mut rng = StdRng::seed_from_u64(7);
    let dbs = [
        DiGraph::path(6).to_database("E"),
        DiGraph::cycle(5).to_database("E"),
        DiGraph::random_gnp(7, 0.2, &mut rng).to_database("E"),
    ];
    for (g, db) in dbs.iter().enumerate() {
        for engine in [
            Engine::Seminaive,
            Engine::Stratified,
            Engine::Inflationary,
            Engine::WellFounded,
        ] {
            churn(TC, "E", db, engine, 100 + g as u64, 12);
        }
    }
}

#[test]
fn stratified_negation_churn_across_capable_engines() {
    // Reach/Unreach exercises both repair directions through negation:
    // lower-stratum additions kill Unreach facts, removals resurrect them.
    let mut db = DiGraph::path(6).to_database("E");
    for v in 0..6 {
        db.insert_named_fact("V", &[&format!("v{v}")]).unwrap();
    }
    db.insert_named_fact("Start", &["v0"]).unwrap();
    for engine in [
        Engine::Stratified,
        Engine::Inflationary,
        Engine::WellFounded,
    ] {
        churn(REACH_UNREACH, "E", &db, engine, 11, 12);
    }
}

#[test]
fn win_move_churn_on_nonstratified_engines() {
    let mut rng = StdRng::seed_from_u64(3);
    for db in [
        DiGraph::path(5).to_database("Move"),
        DiGraph::random_gnp(6, 0.25, &mut rng).to_database("Move"),
    ] {
        for engine in [Engine::Inflationary, Engine::WellFounded] {
            churn(WIN, "Move", &db, engine, 29, 10);
        }
    }
}

#[test]
fn emptying_a_relation_and_reinserting_roundtrips() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::cycle(5).to_database("E");
    let edges: Vec<Tuple> = db.relation("E").unwrap().sorted();
    for engine in [
        Engine::Seminaive,
        Engine::Stratified,
        Engine::Inflationary,
        Engine::WellFounded,
    ] {
        let mut m = handle(&program, &db, engine);
        // Drain the relation one fact at a time, checking at every step
        // (the last retraction leaves the IDB empty).
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(m.retract(&[("E", e.clone())]).unwrap(), 1);
            assert_matches_recompute(&m, &program, &format!("{engine:?} drain {i}"));
        }
        assert!(m.interp().all_empty());
        assert!(m.database().relation("E").unwrap().is_empty());
        // Re-insert everything as one batch: back to the original model.
        let batch: Vec<(&str, Tuple)> = edges.iter().map(|e| ("E", e.clone())).collect();
        assert_eq!(m.insert(&batch).unwrap(), edges.len());
        assert_matches_recompute(&m, &program, &format!("{engine:?} reinsert"));
        let fresh = handle(&program, &db, engine);
        assert_eq!(m.interp(), fresh.interp());
    }
}

#[test]
fn query_after_update_agrees_with_the_maintained_model() {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(6).to_database("E");
    let mut m = handle(&program, &db, Engine::Stratified);
    let sid = m.compiled().idb_id("S").unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..8 {
        let t = Tuple::from_ids(&[rng.gen_range(0..6), rng.gen_range(0..6)]);
        let present = m.contains("E", &t);
        if present {
            m.retract(&[("E", t)]).unwrap();
        } else {
            m.insert(&[("E", t)]).unwrap();
        }
        // Goal S('vK', y) for a random source: the goal-directed answer
        // must match filtering the maintained relation.
        let k = rng.gen_range(0..6);
        let goal = Atom {
            predicate: "S".into(),
            terms: vec![Term::Const(format!("v{k}")), Term::Var("y".into())],
        };
        let ans = m.query(&goal, &QueryOpts::default()).unwrap();
        let src = m.database().universe().lookup(&format!("v{k}")).unwrap();
        let expect: Vec<Tuple> = m
            .interp()
            .get(sid)
            .sorted()
            .iter()
            .filter(|t| t.items()[0] == src)
            .cloned()
            .collect();
        assert_eq!(ans.tuples, expect);
    }
}

#[test]
fn mixed_fact_arities_and_auxiliary_relations_churn() {
    // Churn the *unary* relations of the stratified program too — Start
    // flips who is reachable wholesale, V changes the complement domain.
    let program = parse_program(REACH_UNREACH).unwrap();
    let mut db = DiGraph::path(5).to_database("E");
    for v in 0..5 {
        db.insert_named_fact("V", &[&format!("v{v}")]).unwrap();
    }
    db.insert_named_fact("Start", &["v0"]).unwrap();
    let mut m = handle(&program, &db, Engine::Stratified);
    let mut rng = StdRng::seed_from_u64(41);
    for step in 0..16 {
        let (rel, t) = match rng.gen_range(0u32..3) {
            0 => (
                "E",
                Tuple::from_ids(&[rng.gen_range(0..5), rng.gen_range(0..5)]),
            ),
            1 => ("Start", Tuple::from_ids(&[rng.gen_range(0..5)])),
            _ => ("V", Tuple::from_ids(&[rng.gen_range(0..5)])),
        };
        if m.contains(rel, &t) {
            m.retract(&[(rel, t)]).unwrap();
        } else {
            m.insert(&[(rel, t)]).unwrap();
        }
        assert_matches_recompute(&m, &program, &format!("aux churn step {step}"));
    }
}
