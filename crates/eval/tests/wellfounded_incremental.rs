//! Property tests for the incremental well-founded engine.
//!
//! The engine computes the alternating fixpoint by warm-started semi-naive
//! Γ, removed-set-driven restarts and deletion propagation on the
//! decreasing side; these tests pin it against two independent references
//! on randomized inputs (fixed seeds):
//!
//! * the **old naive alternating fixpoint** (`Γ` iterated from ∅ with full
//!   applications, re-implemented here verbatim from the pre-incremental
//!   engine) on non-stratified programs — true facts, undefined facts *and*
//!   alternation counts must all coincide;
//! * **stratified evaluation** on stratified programs, where the
//!   well-founded model is total and equals the perfect model.

use inflog_core::graphs::DiGraph;
use inflog_core::Database;
use inflog_eval::{
    apply_with_neg, stratified_eval, well_founded, CompiledProgram, EvalContext, Interp,
};
use inflog_syntax::{parse_program, Program};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `Γ(J)` by naive iteration of the positivized operator from ∅.
fn gamma_naive(cp: &CompiledProgram, ctx: &EvalContext, j: &Interp) -> Interp {
    let mut s = cp.empty_interp();
    loop {
        let derived = apply_with_neg(cp, ctx, &s, j);
        if s.union_with(&derived) == 0 {
            return s;
        }
    }
}

/// The pre-incremental engine: alternate `Γ²` from ∅ with full
/// recomputation, returning (true facts, undefined, alternations).
fn well_founded_reference(program: &Program, db: &Database) -> (Interp, Interp, usize) {
    let cp = CompiledProgram::compile(program, db).unwrap();
    let ctx = EvalContext::new(&cp, db).unwrap();
    let mut t = cp.empty_interp();
    let mut alternations = 0;
    loop {
        let u = gamma_naive(&cp, &ctx, &t);
        let t_next = gamma_naive(&cp, &ctx, &u);
        alternations += 1;
        if t_next == t {
            return (u.difference(&t), t, alternations);
        }
        t = t_next;
    }
}

fn assert_matches_reference(program: &Program, db: &Database, label: &str) {
    let (undefined, true_facts, alternations) = well_founded_reference(program, db);
    let wf = well_founded(program, db).unwrap();
    assert_eq!(wf.true_facts, true_facts, "true facts diverged: {label}");
    assert_eq!(wf.undefined, undefined, "undefined diverged: {label}");
    assert_eq!(
        wf.alternations, alternations,
        "alternation count diverged: {label}"
    );
}

/// Non-stratified programs exercising every incremental path: negation-only
/// rules (win-move), unary recursion through negation (π₁), and positive
/// IDB recursion *guarded* by a non-stratified predicate — the latter drives
/// the overdeletion cascade through positive dependencies.
const NON_STRATIFIED: &[&str] = &[
    "Win(x) :- E(x, y), !Win(y).",
    "T(x) :- E(y, x), !T(y).",
    "A(x) :- V(x), !B(x). B(x) :- V(x), !A(x).",
    "
        W(x) :- E(x, y), !W(y).
        R(x, y) :- E(x, y), !W(x).
        R(x, y) :- R(x, z), E(z, y), !W(y).
    ",
    "
        P(x) :- E(x, y), !Q(y).
        Q(x) :- E(y, x), !P(x).
        S(x) :- P(x), Q(x).
    ",
];

#[test]
fn matches_naive_alternating_fixpoint_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xF0F0);
    for (pi, src) in NON_STRATIFIED.iter().enumerate() {
        let program = parse_program(src).unwrap();
        for round in 0..6 {
            let g = DiGraph::random_gnp(7, 0.25, &mut rng);
            let mut db = g.to_database("E");
            for v in 0..7 {
                db.insert_named_fact("V", &[&format!("v{v}")]).unwrap();
            }
            assert_matches_reference(&program, &db, &format!("program {pi}, round {round}: {g}"));
        }
    }
}

#[test]
fn matches_naive_alternating_fixpoint_on_structured_graphs() {
    for src in NON_STRATIFIED {
        let program = parse_program(src).unwrap();
        for g in [
            DiGraph::path(9),
            DiGraph::cycle(6),
            DiGraph::cycle(7),
            DiGraph::binary_tree(7),
            {
                // Long path with a back edge: many alternations, so the
                // removed-set restarts and deletion cones run repeatedly.
                let mut g = DiGraph::path(12);
                g.add_edge(0, 11);
                g
            },
        ] {
            let mut db = g.to_database("E");
            for v in 0..g.num_vertices() {
                db.insert_named_fact("V", &[&format!("v{v}")]).unwrap();
            }
            assert_matches_reference(&program, &db, &format!("{src} on {g}"));
        }
    }
}

#[test]
fn matches_stratified_on_random_stratified_programs() {
    let stratified_programs = [
        "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- !S(x, y).
        ",
        "
            A(x) :- E(x, y).
            B(x) :- E(y, x), !A(x).
            C(x) :- B(x), !A(x).
        ",
        "
            R(x, y) :- E(x, y).
            R(x, y) :- R(x, z), E(z, y).
            N(x) :- E(x, y), !R(y, x).
            M(x) :- N(x), E(x, y), !R(x, x).
        ",
    ];
    let mut rng = StdRng::seed_from_u64(2024);
    for src in stratified_programs {
        let program = parse_program(src).unwrap();
        for _ in 0..6 {
            let g = DiGraph::random_gnp(6, 0.3, &mut rng);
            let db = g.to_database("E");
            let wf = well_founded(&program, &db).unwrap();
            let (perfect, _) = stratified_eval(&program, &db).unwrap();
            assert!(wf.is_total(), "stratified ⟹ total: {g}");
            assert_eq!(wf.true_facts, perfect, "perfect model diverged: {g}");
        }
    }
}

#[test]
fn warm_context_reuse_is_deterministic() {
    // Repeated evaluations over one EvalContext (warm persistent indexes,
    // patched deletions from earlier runs) must be bit-identical.
    let program = parse_program(
        "
        W(x) :- E(x, y), !W(y).
        R(x, y) :- E(x, y), !W(x).
        R(x, y) :- R(x, z), E(z, y), !W(y).
        ",
    )
    .unwrap();
    let mut g = DiGraph::path(10);
    g.add_edge(3, 0);
    let db = g.to_database("E");
    let cp = CompiledProgram::compile(&program, &db).unwrap();
    let ctx = EvalContext::new(&cp, &db).unwrap();
    let first = inflog_eval::wellfounded::well_founded_compiled(&cp, &ctx);
    for _ in 0..3 {
        let again = inflog_eval::wellfounded::well_founded_compiled(&cp, &ctx);
        assert_eq!(first, again);
    }
}
