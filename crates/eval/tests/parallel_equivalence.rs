//! Parallel ≡ sequential, bit for bit.
//!
//! The parallel round executor promises more than set equality: for every
//! worker-thread count the evaluation must produce the **same tuples in the
//! same insertion order**, the same per-round deltas, and (for the
//! well-founded engine) the same alternation count as a sequential run —
//! the merge in task order makes parallel first occurrences coincide with
//! sequential ones. These fixed-seed randomized tests enforce exactly that
//! over random programs and random graphs, for all four driver-based
//! engines, at 2 and 4 worker threads with the fork threshold at zero (so
//! even tiny rounds take the parallel path).

use inflog_core::graphs::DiGraph;
use inflog_core::Database;
use inflog_eval::{
    inflationary_with, least_fixpoint_seminaive_with, stratified_eval_with, stratify,
    well_founded_with, CompiledProgram, DeltaDriver, EvalContext, EvalOptions, Governor, Interp,
};
use inflog_syntax::{parse_program, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thread counts under test (beyond the sequential baseline).
const THREAD_COUNTS: [usize; 2] = [2, 4];

/// Forced-parallel options: every round forks regardless of size.
fn forced(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        parallel_threshold: 0,
        ..EvalOptions::sequential()
    }
}

/// Bit-identity: same tuples in the same dense (insertion) order, per
/// relation — strictly stronger than `Interp` equality, which is set-based.
fn assert_bit_identical(seq: &Interp, par: &Interp, label: &str) {
    assert_eq!(seq.len(), par.len(), "relation count diverged: {label}");
    for i in 0..seq.len() {
        assert_eq!(
            seq.get(i).dense(),
            par.get(i).dense(),
            "insertion order of relation {i} diverged: {label}"
        );
    }
}

/// Generates a random program: 2–4 rules over IDB predicates `P/2`, `Q/1`
/// and EDB `E/2`, with variables drawn from a 4-slot pool. `allow_negation`
/// sprinkles negated IDB literals in (for the engines whose semantics is
/// total); without it the program is positive.
fn random_program(rng: &mut StdRng, allow_negation: bool) -> Program {
    let vars = ["x", "y", "z", "w"];
    let mut src = String::new();
    let num_rules = rng.gen_range(2usize..5);
    for _ in 0..num_rules {
        let head_is_p = rng.gen_bool(0.5);
        if head_is_p {
            let (a, b) = (
                vars[rng.gen_range(0usize..2)],
                vars[rng.gen_range(0usize..3)],
            );
            src.push_str(&format!("P({a}, {b}) :- "));
        } else {
            src.push_str(&format!("Q({}) :- ", vars[rng.gen_range(0usize..3)]));
        }
        let num_lits = rng.gen_range(1usize..4);
        for li in 0..num_lits {
            if li > 0 {
                src.push_str(", ");
            }
            let neg = allow_negation && li > 0 && rng.gen_bool(0.3);
            if neg {
                src.push('!');
            }
            match rng.gen_range(0u32..3) {
                0 => {
                    let (a, b) = (
                        vars[rng.gen_range(0usize..4)],
                        vars[rng.gen_range(0usize..4)],
                    );
                    src.push_str(&format!("E({a}, {b})"));
                }
                1 => {
                    let (a, b) = (
                        vars[rng.gen_range(0usize..4)],
                        vars[rng.gen_range(0usize..4)],
                    );
                    src.push_str(&format!("P({a}, {b})"));
                }
                _ => src.push_str(&format!("Q({})", vars[rng.gen_range(0usize..4)])),
            }
        }
        src.push_str(". ");
    }
    parse_program(&src).expect("generated programs are syntactically valid")
}

/// A random graph database small enough that `Domain` steps over unsafe
/// rules stay affordable, large enough that joins have real fan-out.
fn random_db(rng: &mut StdRng) -> Database {
    let n = rng.gen_range(4usize..8);
    DiGraph::random_gnp(n, 0.3, rng).to_database("E")
}

#[test]
fn seminaive_parallel_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x000A_11E1);
    for round in 0..12 {
        let program = random_program(&mut rng, false);
        let db = random_db(&mut rng);
        let (seq, seq_trace) =
            least_fixpoint_seminaive_with(&program, &db, &EvalOptions::sequential()).unwrap();
        for threads in THREAD_COUNTS {
            let (par, par_trace) =
                least_fixpoint_seminaive_with(&program, &db, &forced(threads)).unwrap();
            let label = format!("seminaive round {round}, {threads} threads");
            assert_bit_identical(&seq, &par, &label);
            assert_eq!(seq_trace.rounds, par_trace.rounds, "{label}");
            assert_eq!(
                seq_trace.added_per_round, par_trace.added_per_round,
                "{label}"
            );
        }
    }
}

#[test]
fn inflationary_parallel_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x000A_11E2);
    for round in 0..12 {
        let program = random_program(&mut rng, true);
        let db = random_db(&mut rng);
        let (seq, seq_trace) =
            inflationary_with(&program, &db, &EvalOptions::sequential()).unwrap();
        for threads in THREAD_COUNTS {
            let (par, par_trace) = inflationary_with(&program, &db, &forced(threads)).unwrap();
            let label = format!("inflationary round {round}, {threads} threads");
            assert_bit_identical(&seq, &par, &label);
            assert_eq!(seq_trace.rounds, par_trace.rounds, "{label}");
            assert_eq!(
                seq_trace.added_per_round, par_trace.added_per_round,
                "{label}"
            );
        }
    }
}

#[test]
fn stratified_parallel_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x000A_11E3);
    let mut tested = 0;
    let mut round = 0;
    while tested < 10 {
        round += 1;
        let program = random_program(&mut rng, true);
        if stratify(&program).is_err() {
            continue; // stratified evaluation is undefined here
        }
        tested += 1;
        let db = random_db(&mut rng);
        let (seq, seq_trace) =
            stratified_eval_with(&program, &db, &EvalOptions::sequential()).unwrap();
        for threads in THREAD_COUNTS {
            let (par, par_trace) = stratified_eval_with(&program, &db, &forced(threads)).unwrap();
            let label = format!("stratified round {round}, {threads} threads");
            assert_bit_identical(&seq, &par, &label);
            assert_eq!(seq_trace.rounds, par_trace.rounds, "{label}");
            assert_eq!(
                seq_trace.added_per_round, par_trace.added_per_round,
                "{label}"
            );
        }
    }
}

#[test]
fn wellfounded_parallel_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x000A_11E4);
    for round in 0..10 {
        let program = random_program(&mut rng, true);
        let db = random_db(&mut rng);
        let seq = well_founded_with(&program, &db, &EvalOptions::sequential()).unwrap();
        for threads in THREAD_COUNTS {
            let par = well_founded_with(&program, &db, &forced(threads)).unwrap();
            let label = format!("wellfounded round {round}, {threads} threads");
            assert_bit_identical(&seq.true_facts, &par.true_facts, &label);
            assert_bit_identical(&seq.undefined, &par.undefined, &label);
            assert_eq!(seq.alternations, par.alternations, "{label}");
        }
    }
}

#[test]
fn wellfounded_parallel_on_structured_alternating_instances() {
    // Hand-picked programs whose alternations exercise every incremental
    // path (removed-set restarts, deletion cones, rederivation) on graphs
    // with many alternations — with every Γ round forced parallel.
    let programs = [
        "Win(x) :- E(x, y), !Win(y).",
        "
            W(x) :- E(x, y), !W(y).
            R(x, y) :- E(x, y), !W(x).
            R(x, y) :- R(x, z), E(z, y), !W(y).
        ",
    ];
    for src in programs {
        let program = parse_program(src).unwrap();
        for g in [DiGraph::path(12), DiGraph::cycle(6), DiGraph::cycle(7), {
            let mut g = DiGraph::path(12);
            g.add_edge(0, 11);
            g
        }] {
            let db = g.to_database("E");
            let seq = well_founded_with(&program, &db, &EvalOptions::sequential()).unwrap();
            for threads in THREAD_COUNTS {
                let par = well_founded_with(&program, &db, &forced(threads)).unwrap();
                let label = format!("{src} on {g}, {threads} threads");
                assert_bit_identical(&seq.true_facts, &par.true_facts, &label);
                assert_bit_identical(&seq.undefined, &par.undefined, &label);
                assert_eq!(seq.alternations, par.alternations, "{label}");
            }
        }
    }
}

const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

#[test]
fn indexes_stay_sound_after_rollback_then_parallel_round() {
    // Guards the PR 3 rollback path against the parallel merge order: run
    // TC to fixpoint (warming positional indexes over S), roll S back to a
    // watermark (shrink-epoch rollback), then drive a forced-parallel
    // extension from the rolled-back state. The postings must stay sorted
    // and complete, and the re-extension must land on the same fixpoint.
    let db = DiGraph::binary_tree(63).to_database("E");
    let program = parse_program(TC).unwrap();
    let cp = CompiledProgram::compile(&program, &db).unwrap();
    let ctx = EvalContext::new(&cp, &db).unwrap();
    let mut driver = DeltaDriver::with_options(&cp, forced(4));
    let mut s = cp.empty_interp();
    driver
        .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
        .unwrap();
    let full = s.clone();
    assert!(ctx.parallel_applications() > 0, "rounds must have forked");

    let sid = cp.idb_id("S").unwrap();
    ctx.debug_validate_indexes(s.get(sid));
    // Roll back to the base edges (round one's tuples sit first in dense
    // order), then regrow in parallel.
    let base = db.relation("E").unwrap().len();
    s.get_mut(sid).truncate(base);
    driver
        .extend(&cp, &ctx, &mut s, None, None, None, &Governor::free())
        .unwrap();
    ctx.debug_validate_indexes(s.get(sid));
    assert_eq!(s, full, "warm restart after rollback lost tuples");
}
