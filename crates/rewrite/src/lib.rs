//! # inflog-rewrite
//!
//! Program-to-program **demand transformations**: given a goal atom (a point
//! query like `Win('v3')` or `S('v0', y)`), rewrite a DATALOG¬ program so
//! that bottom-up evaluation computes only the *cone* of tuples the goal can
//! depend on, instead of the whole fixpoint.
//!
//! Two rewrites, chosen by the caller according to the program's negation
//! structure (the evaluator's `demand_support` capability check):
//!
//! * [`magic::rewrite_stratified`] — the classic **adorned magic-set
//!   rewrite** for stratified programs. Demand (binding patterns) propagates
//!   left-to-right through rule bodies and across *positive* IDB atoms;
//!   it never crosses into a negated literal — the negated predicate's full
//!   cone is evaluated unrewritten instead, which keeps the rewritten
//!   program stratified by construction (negation is then handled
//!   stratum-by-stratum by the stratified engine, exactly as in the original
//!   program).
//! * [`magic::rewrite_cone`] — a two-phase **demand-cone restriction** for
//!   non-stratifiable programs evaluated under the well-founded semantics.
//!   Phase one is a *positive* demand program (magic predicates plus a
//!   positivized over-approximation of each adorned predicate) whose least
//!   fixpoint is the set of subgoals the query can reach through positive
//!   *and* negative dependencies; phase two guards the adorned original
//!   rules with the materialized magic relations and is evaluated by the
//!   well-founded engine. Soundness rests on the *relevance* property of the
//!   well-founded semantics: the truth value of an atom depends only on the
//!   ground rules in its dependency cone.
//!
//! The rewrites are purely syntactic ([`inflog_syntax::Program`] →
//! [`inflog_syntax::Program`]); evaluation lives in `inflog-eval`
//! (`eval::query`). Generated predicates use `#`-separated names
//! (`S#bf`, `M#S#bf`, `P#S#bf`) that the concrete syntax cannot produce, so
//! they can never collide with user predicates of a parsed program.

pub mod adorn;
pub mod magic;

pub use adorn::{adorned_name, magic_name, pot_name, Adornment};
pub use magic::{rewrite_cone, rewrite_stratified, ConeRewrite, MagicRewrite};
