//! Adornments: per-argument binding patterns (`b` = bound, `f` = free).
//!
//! An adornment records, for one use of a predicate, which argument
//! positions carry a value already known at that point of the evaluation —
//! from the goal's constants, or from variables bound earlier in a rule
//! body under the left-to-right sideways-information-passing strategy.
//! `S` queried as `S('v0', y)` gets the adornment `bf`; the recursive call
//! it demands inherits a pattern from the bindings available where the
//! recursive atom occurs.

use inflog_syntax::{Atom, Term};
use std::collections::BTreeSet;

/// A binding pattern: `true` = bound, `false` = free, one entry per
/// argument position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Adornment(Vec<bool>);

impl Adornment {
    /// Builds an adornment from explicit flags.
    pub fn new(bound: Vec<bool>) -> Self {
        Adornment(bound)
    }

    /// The adornment a **goal atom** induces: constant positions are bound,
    /// variable positions free (repeated goal variables are equality
    /// filters on the answer, not bindings — the rewrite stays sound either
    /// way, this is just the conservative choice).
    pub fn of_goal(goal: &Atom) -> Self {
        Adornment(goal.terms.iter().map(|t| !t.is_var()).collect())
    }

    /// The adornment of a body occurrence, given the variables bound before
    /// it: constants and already-bound variables are bound positions.
    pub fn of_occurrence(atom: &Atom, bound_vars: &BTreeSet<String>) -> Self {
        Adornment(
            atom.terms
                .iter()
                .map(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound_vars.contains(v),
                })
                .collect(),
        )
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Number of bound positions (the arity of the magic predicate).
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Whether position `i` is bound.
    pub fn is_bound(&self, i: usize) -> bool {
        self.0[i]
    }

    /// Whether every position is free (the degenerate full-demand pattern).
    pub fn all_free(&self) -> bool {
        !self.0.iter().any(|&b| b)
    }

    /// The classic string form: `bf`, `bb`, … (empty for 0-ary predicates).
    pub fn suffix(&self) -> String {
        self.0.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
    }

    /// The terms of `atom` at this adornment's bound positions, in position
    /// order — the argument list of the corresponding magic atom.
    pub fn bound_terms(&self, atom: &Atom) -> Vec<Term> {
        debug_assert_eq!(atom.arity(), self.arity());
        atom.terms
            .iter()
            .enumerate()
            .filter(|(i, _)| self.0[*i])
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// The variables of `atom` at this adornment's bound positions.
    pub fn bound_vars(&self, atom: &Atom) -> BTreeSet<String> {
        atom.terms
            .iter()
            .enumerate()
            .filter(|(i, _)| self.0[*i])
            .filter_map(|(_, t)| t.as_var().map(str::to_owned))
            .collect()
    }
}

/// Name of the adorned copy of `pred` under adornment `a`: `pred#bf`.
///
/// `#` cannot appear in a parsed predicate name, so adorned predicates never
/// collide with user predicates.
pub fn adorned_name(pred: &str, a: &Adornment) -> String {
    format!("{pred}#{}", a.suffix())
}

/// Name of the magic (demand) predicate for `pred` under `a`: `M#pred#bf`.
/// Its arity is [`Adornment::bound_count`].
pub fn magic_name(pred: &str, a: &Adornment) -> String {
    format!("M#{pred}#{}", a.suffix())
}

/// Name of the positivized over-approximation of `pred#a` used by the
/// demand phase of the cone rewrite: `P#pred#bf`. Full arity.
pub fn pot_name(pred: &str, a: &Adornment) -> String {
    format!("P#{pred}#{}", a.suffix())
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_syntax::Term;

    fn v(s: &str) -> Term {
        Term::Var(s.into())
    }

    fn c(s: &str) -> Term {
        Term::Const(s.into())
    }

    #[test]
    fn goal_adornment_marks_constants() {
        let a = Adornment::of_goal(&Atom::new("S", vec![c("v0"), v("y")]));
        assert_eq!(a.suffix(), "bf");
        assert_eq!(a.bound_count(), 1);
        assert!(a.is_bound(0) && !a.is_bound(1));
        assert!(!a.all_free());
        let free = Adornment::of_goal(&Atom::new("S", vec![v("x"), v("y")]));
        assert_eq!(free.suffix(), "ff");
        assert!(free.all_free());
    }

    #[test]
    fn occurrence_adornment_uses_bound_vars() {
        let mut bound = BTreeSet::new();
        bound.insert("x".to_owned());
        let a = Adornment::of_occurrence(&Atom::new("S", vec![v("x"), v("y")]), &bound);
        assert_eq!(a.suffix(), "bf");
        let b = Adornment::of_occurrence(&Atom::new("S", vec![c("1"), v("y")]), &bound);
        assert_eq!(b.suffix(), "bf");
    }

    #[test]
    fn bound_terms_projects_in_position_order() {
        let a = Adornment::new(vec![true, false, true]);
        let atom = Atom::new("Q", vec![v("x"), v("y"), c("1")]);
        assert_eq!(a.bound_terms(&atom), vec![v("x"), c("1")]);
        assert_eq!(
            a.bound_vars(&atom).into_iter().collect::<Vec<_>>(),
            vec!["x".to_owned()]
        );
    }

    #[test]
    fn zero_ary_adornment() {
        let a = Adornment::of_goal(&Atom::new("Win", Vec::<Term>::new()));
        assert_eq!(a.suffix(), "");
        assert_eq!(a.bound_count(), 0);
        assert_eq!(magic_name("Win", &a), "M#Win#");
    }

    #[test]
    fn generated_names_are_distinct() {
        let a = Adornment::new(vec![true, false]);
        assert_eq!(adorned_name("S", &a), "S#bf");
        assert_eq!(magic_name("S", &a), "M#S#bf");
        assert_eq!(pot_name("S", &a), "P#S#bf");
    }
}
