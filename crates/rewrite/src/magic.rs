//! The magic-set rewrite: from `(program, goal)` to a demand-restricted
//! program whose bottom-up fixpoint contains exactly the goal-relevant part
//! of the original model.
//!
//! # Construction (shared skeleton)
//!
//! Starting from the goal's adornment, a worklist visits every demanded
//! `(predicate, adornment)` pair. For each original rule
//! `p(t̄) :- L₁, …, Lₙ` and demanded adornment `a` of `p` it emits:
//!
//! * one **guarded rule** — `p#a(t̄) :- M#p#a(t̄_b), L₁', …, Lₙ'` where
//!   `t̄_b` are the head terms at bound positions and each IDB atom `Lᵢ` is
//!   replaced by its adorned copy. The guard makes the rule fire only for
//!   demanded bindings (and, usefully, hands the join planner an extra
//!   bound atom to key scans on);
//! * one **magic rule** per demanding body occurrence `Lᵢ = q(s̄)` with
//!   occurrence adornment `a'`:
//!   `M#q#a'(s̄_b) :- M#p#a(t̄_b), L₁'', …, L_{i-1}''` — "if `p` is demanded
//!   with these bindings and the prefix can be satisfied, then `q` is
//!   demanded with the bindings the prefix produces". Binding propagation is
//!   left-to-right (variables bound by the bound head positions, by earlier
//!   positive atoms, or through equalities).
//!
//! The goal seeds the demand: `M#goal#a₀(c̄).` with the goal's constants.
//!
//! # Negation
//!
//! The two public entry points differ exactly in how demand interacts with
//! negated IDB literals:
//!
//! * [`rewrite_stratified`] — demand **never crosses a negation**. A negated
//!   IDB literal keeps its original (un-adorned) predicate, and the original
//!   rules of that predicate's whole positive-and-negative cone are copied
//!   into the rewritten program unrewritten, so the literal is tested
//!   against the *fully evaluated* relation. Consequence: the rewritten
//!   program is stratified whenever the input is — the adorned/magic
//!   predicates depend on each other only positively and reach the
//!   unrewritten copies only through the same negative edges the original
//!   program had — so the stratified engine evaluates it stratum by
//!   stratum, and non-membership tests are exact. (Letting demand cross a
//!   negation *would* in general re-introduce recursion through negation in
//!   the rewritten program even for stratified inputs; this variant never
//!   does, by construction.)
//! * [`rewrite_cone`] — for non-stratifiable programs demand **must** cross
//!   negations (the truth of `Win(x)` depends on `Win(y)` through `!Win(y)`),
//!   but the demand computation itself has to stay two-valued. The rewrite
//!   therefore returns *two* programs. The **demand program** is positive:
//!   magic rules whose prefixes are *positivized* — negated literals and
//!   inequalities dropped, positive IDB atoms replaced by `P#q#a'`
//!   over-approximations (`P#` rules derive everything the guarded rules
//!   could derive if every negation were true). Over-approximating demand is
//!   sound: it can only enlarge the evaluated cone. The **guarded program**
//!   adorns positive *and* negative IDB occurrences and keeps the magic
//!   guards, which phase two reads as database relations. Because the
//!   demanded set is closed under positive and negative dependencies, the
//!   relevance property of the well-founded semantics gives
//!   `WF(guarded)|demanded = WF(original)|demanded` — the evaluator
//!   re-verifies this set-identity in debug builds.

use crate::adorn::{adorned_name, magic_name, pot_name, Adornment};
use inflog_syntax::{Atom, Literal, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Result of [`rewrite_stratified`]: one self-contained program.
#[derive(Debug, Clone)]
pub struct MagicRewrite {
    /// Seed fact + magic rules + guarded adorned rules + unrewritten cones
    /// of negated predicates. Stratified whenever the input program is.
    pub program: Program,
    /// Adorned goal predicate — read the answers off this relation (filter
    /// by the goal's constants: recursive demand may add further bindings).
    pub goal_pred: String,
    /// The goal's magic predicate (diagnostics / tests).
    pub goal_magic: String,
}

/// Result of [`rewrite_cone`]: the two evaluation phases.
#[derive(Debug, Clone)]
pub struct ConeRewrite {
    /// Phase 1 — **positive** demand program (seed + magic + `P#`
    /// over-approximation rules). Evaluate to its least fixpoint first.
    pub demand: Program,
    /// Phase 2 — guarded adorned program. Its magic predicates are *not*
    /// defined here: materialize phase 1's magic relations as database
    /// relations, then evaluate under the well-founded semantics.
    pub guarded: Program,
    /// The magic predicates phase 2 expects as database relations.
    pub magic_preds: Vec<String>,
    /// Adorned goal predicate — read answers (true and undefined) off it.
    pub goal_pred: String,
}

/// Adorned magic-set rewrite for **stratified** programs (demand stops at
/// negated literals; see the module docs).
///
/// The goal's constant positions become the initial binding pattern; the
/// caller is responsible for only evaluating the result with a
/// stratification-aware engine (the `eval::query` entry point checks the
/// input is stratified first).
///
/// # Panics
/// Panics if the goal predicate is not an IDB predicate of `program`
/// (callers route EDB goals straight to the database).
pub fn rewrite_stratified(program: &Program, goal: &Atom) -> MagicRewrite {
    let out = rewrite(program, goal, Mode::Stratified);
    let mut rules = Vec::new();
    rules.push(out.seed);
    rules.extend(out.magic_rules);
    rules.extend(out.guarded_rules);
    // Unrewritten cones of negated predicates: original rules, source order.
    let full = full_cone(program, &out.full_negs);
    rules.extend(
        program
            .rules
            .iter()
            .filter(|r| full.contains(&r.head.predicate))
            .cloned(),
    );
    MagicRewrite {
        program: Program::new(rules),
        goal_pred: out.goal_pred,
        goal_magic: out.goal_magic,
    }
}

/// Two-phase demand-cone rewrite for **non-stratifiable** programs under
/// the well-founded semantics (demand crosses negations; see the module
/// docs for the construction and its soundness).
///
/// # Panics
/// Panics if the goal predicate is not an IDB predicate of `program`.
pub fn rewrite_cone(program: &Program, goal: &Atom) -> ConeRewrite {
    let out = rewrite(program, goal, Mode::Cone);
    let mut demand = Vec::new();
    demand.push(out.seed);
    demand.extend(out.magic_rules);
    demand.extend(out.pot_rules);
    ConeRewrite {
        demand: Program::new(demand),
        guarded: Program::new(out.guarded_rules),
        magic_preds: out.magic_preds,
        goal_pred: out.goal_pred,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Stratified,
    Cone,
}

struct Rewritten {
    seed: Rule,
    magic_rules: Vec<Rule>,
    guarded_rules: Vec<Rule>,
    pot_rules: Vec<Rule>,
    magic_preds: Vec<String>,
    full_negs: BTreeSet<String>,
    goal_pred: String,
    goal_magic: String,
}

/// The shared worklist over demanded `(predicate, adornment)` pairs.
fn rewrite(program: &Program, goal: &Atom, mode: Mode) -> Rewritten {
    let idb = program.idb_predicates();
    assert!(
        idb.contains(&goal.predicate),
        "magic rewrite requires an IDB goal predicate, got `{}`",
        goal.predicate
    );
    // Rules grouped by head predicate, preserving source order.
    let mut rules_of: BTreeMap<&str, Vec<&Rule>> = BTreeMap::new();
    for r in &program.rules {
        rules_of.entry(&r.head.predicate).or_default().push(r);
    }

    let a0 = Adornment::of_goal(goal);
    let mut seen: BTreeSet<(String, Adornment)> = BTreeSet::new();
    let mut queue: VecDeque<(String, Adornment)> = VecDeque::new();
    seen.insert((goal.predicate.clone(), a0.clone()));
    queue.push_back((goal.predicate.clone(), a0.clone()));

    let mut magic_rules = Vec::new();
    let mut guarded_rules = Vec::new();
    let mut pot_rules = Vec::new();
    let mut magic_preds = Vec::new();
    let mut full_negs = BTreeSet::new();

    while let Some((pred, adn)) = queue.pop_front() {
        magic_preds.push(magic_name(&pred, &adn));
        for rule in rules_of.get(pred.as_str()).into_iter().flatten() {
            let out = adorn_rule(rule, &adn, &idb, mode);
            guarded_rules.push(out.guarded);
            magic_rules.extend(out.magic_rules);
            if let Some(p) = out.pot_rule {
                pot_rules.push(p);
            }
            for d in out.demands {
                if seen.insert(d.clone()) {
                    queue.push_back(d);
                }
            }
            full_negs.extend(out.full_negs);
        }
    }

    // Seed: the goal's constants, at the bound positions, as a fact rule.
    let seed = Rule::new(
        Atom::new(magic_name(&goal.predicate, &a0), a0.bound_terms(goal)),
        vec![],
    );
    Rewritten {
        seed,
        magic_rules,
        guarded_rules,
        pot_rules,
        magic_preds,
        full_negs,
        goal_pred: adorned_name(&goal.predicate, &a0),
        goal_magic: magic_name(&goal.predicate, &a0),
    }
}

struct AdornedRule {
    guarded: Rule,
    magic_rules: Vec<Rule>,
    pot_rule: Option<Rule>,
    demands: Vec<(String, Adornment)>,
    full_negs: Vec<String>,
}

/// Adorns one rule under one head adornment: the left-to-right binding walk
/// that produces the guarded rule, the per-occurrence magic rules, and (in
/// cone mode) the positivized `P#` over-approximation rule.
fn adorn_rule(rule: &Rule, adn: &Adornment, idb: &BTreeSet<String>, mode: Mode) -> AdornedRule {
    let guard = Atom::new(
        magic_name(&rule.head.predicate, adn),
        adn.bound_terms(&rule.head),
    );
    let mut bound = adn.bound_vars(&rule.head);
    // Guarded-rule body (the guard first: it is the smallest relation and
    // binds the demanded head variables for every later keyed scan).
    let mut body = vec![Literal::Pos(guard.clone())];
    // Running prefixes for magic-rule bodies: `exact` keeps every literal
    // (adorned), `pot` is the positivized form (negations and inequalities
    // dropped, IDB atoms through their `P#` over-approximations).
    let mut exact_prefix: Vec<Literal> = Vec::new();
    let mut pot_prefix: Vec<Literal> = Vec::new();
    let mut magic_rules = Vec::new();
    let mut demands = Vec::new();
    let mut full_negs = Vec::new();

    let magic_body = |prefix: &[Literal]| -> Vec<Literal> {
        let mut b = Vec::with_capacity(prefix.len() + 1);
        b.push(Literal::Pos(guard.clone()));
        b.extend(prefix.iter().cloned());
        b
    };

    for lit in &rule.body {
        match lit {
            Literal::Pos(atom) if idb.contains(&atom.predicate) => {
                let a2 = Adornment::of_occurrence(atom, &bound);
                let prefix = match mode {
                    Mode::Stratified => &exact_prefix,
                    Mode::Cone => &pot_prefix,
                };
                magic_rules.push(Rule::new(
                    Atom::new(magic_name(&atom.predicate, &a2), a2.bound_terms(atom)),
                    magic_body(prefix),
                ));
                demands.push((atom.predicate.clone(), a2.clone()));
                let adorned = Atom::new(adorned_name(&atom.predicate, &a2), atom.terms.clone());
                body.push(Literal::Pos(adorned.clone()));
                exact_prefix.push(Literal::Pos(adorned));
                pot_prefix.push(Literal::Pos(Atom::new(
                    pot_name(&atom.predicate, &a2),
                    atom.terms.clone(),
                )));
                bound.extend(atom.variables().map(str::to_owned));
            }
            Literal::Pos(atom) => {
                // EDB atom: unchanged everywhere; binds its variables.
                body.push(lit.clone());
                exact_prefix.push(lit.clone());
                pot_prefix.push(lit.clone());
                bound.extend(atom.variables().map(str::to_owned));
            }
            Literal::Neg(atom) if idb.contains(&atom.predicate) => match mode {
                Mode::Stratified => {
                    // Demand stops here: test against the full original
                    // relation, whose cone is copied unrewritten.
                    body.push(lit.clone());
                    exact_prefix.push(lit.clone());
                    full_negs.push(atom.predicate.clone());
                }
                Mode::Cone => {
                    // Demand crosses: the negated occurrence is adorned and
                    // demanded exactly like a positive one (it binds
                    // nothing). Dropped from the positivized prefix.
                    let a2 = Adornment::of_occurrence(atom, &bound);
                    magic_rules.push(Rule::new(
                        Atom::new(magic_name(&atom.predicate, &a2), a2.bound_terms(atom)),
                        magic_body(&pot_prefix),
                    ));
                    demands.push((atom.predicate.clone(), a2.clone()));
                    let adorned = Atom::new(adorned_name(&atom.predicate, &a2), atom.terms.clone());
                    body.push(Literal::Neg(adorned.clone()));
                    exact_prefix.push(Literal::Neg(adorned));
                }
            },
            Literal::Neg(_) => {
                // Negated EDB atom: exact filter, not positivizable.
                body.push(lit.clone());
                exact_prefix.push(lit.clone());
            }
            Literal::Eq(s, t) => {
                body.push(lit.clone());
                exact_prefix.push(lit.clone());
                pot_prefix.push(lit.clone());
                let known = |term: &Term| match term {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                };
                match (known(s), known(t)) {
                    (true, false) => {
                        if let Term::Var(v) = t {
                            bound.insert(v.clone());
                        }
                    }
                    (false, true) => {
                        if let Term::Var(v) = s {
                            bound.insert(v.clone());
                        }
                    }
                    _ => {}
                }
            }
            Literal::Neq(_, _) => {
                body.push(lit.clone());
                exact_prefix.push(lit.clone());
            }
        }
    }

    let head = Atom::new(
        adorned_name(&rule.head.predicate, adn),
        rule.head.terms.clone(),
    );
    let pot_rule = match mode {
        Mode::Stratified => None,
        // P#: everything the guarded rule could derive if every negation
        // held — the whole positivized body under the same guard.
        Mode::Cone => Some(Rule::new(
            Atom::new(pot_name(&rule.head.predicate, adn), rule.head.terms.clone()),
            magic_body(&pot_prefix),
        )),
    };
    AdornedRule {
        guarded: Rule::new(head, body),
        magic_rules,
        pot_rule,
        demands,
        full_negs,
    }
}

/// Closure of `seeds` under "depends on" in the original program: every IDB
/// predicate reachable from a seed through rule bodies (positive or
/// negative). These are the predicates a stratified rewrite evaluates in
/// full because a negation tests them.
fn full_cone(program: &Program, seeds: &BTreeSet<String>) -> BTreeSet<String> {
    let idb = program.idb_predicates();
    let mut need: BTreeSet<String> = seeds.iter().filter(|p| idb.contains(*p)).cloned().collect();
    let mut queue: VecDeque<String> = need.iter().cloned().collect();
    while let Some(p) = queue.pop_front() {
        for rule in program.rules.iter().filter(|r| r.head.predicate == p) {
            for lit in &rule.body {
                if let Some(atom) = lit.atom() {
                    if idb.contains(&atom.predicate) && need.insert(atom.predicate.clone()) {
                        queue.push_back(atom.predicate.clone());
                    }
                }
            }
        }
    }
    need
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_syntax::parse_program;

    fn atom(pred: &str, terms: &[Term]) -> Atom {
        Atom::new(pred, terms.to_vec())
    }

    fn v(s: &str) -> Term {
        Term::Var(s.into())
    }

    fn c(s: &str) -> Term {
        Term::Const(s.into())
    }

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

    #[test]
    fn tc_bf_rewrite_shapes() {
        let p = parse_program(TC).unwrap();
        let rw = rewrite_stratified(&p, &atom("S", &[c("v0"), v("y")]));
        assert_eq!(rw.goal_pred, "S#bf");
        assert_eq!(rw.goal_magic, "M#S#bf");
        let printed = rw.program.to_string();
        // Seed fact with the goal constant.
        assert!(printed.contains("M#S#bf('v0')."), "{printed}");
        // Guarded base and recursive rules.
        assert!(
            printed.contains("S#bf(x, y) :- M#S#bf(x), E(x, y)."),
            "{printed}"
        );
        assert!(
            printed.contains("S#bf(x, y) :- M#S#bf(x), E(x, z), S#bf(z, y)."),
            "{printed}"
        );
        // Magic rule: demand propagates along edges.
        assert!(
            printed.contains("M#S#bf(z) :- M#S#bf(x), E(x, z)."),
            "{printed}"
        );
        // Single adornment: one demand, no unrewritten copies.
        assert_eq!(rw.program.len(), 4, "{printed}");
    }

    #[test]
    fn fully_bound_goal_gets_bb_adornment() {
        let p = parse_program(TC).unwrap();
        let rw = rewrite_stratified(&p, &atom("S", &[c("v0"), c("v2")]));
        assert_eq!(rw.goal_pred, "S#bb");
        let printed = rw.program.to_string();
        assert!(printed.contains("M#S#bb('v0', 'v2')."), "{printed}");
        // The recursive occurrence S(z, y) has z fresh-bound by E and y
        // bound from the head: demand pattern stays bb.
        assert!(
            printed.contains("M#S#bb(z, y) :- M#S#bb(x, y), E(x, z)."),
            "{printed}"
        );
    }

    #[test]
    fn all_free_goal_degenerates_to_guarded_full_evaluation() {
        let p = parse_program(TC).unwrap();
        let rw = rewrite_stratified(&p, &atom("S", &[v("x"), v("y")]));
        assert_eq!(rw.goal_pred, "S#ff");
        let printed = rw.program.to_string();
        // 0-ary seed; the guard is trivially true once seeded.
        assert!(printed.contains("M#S#ff()."), "{printed}");
    }

    #[test]
    fn stratified_negation_keeps_full_cone() {
        let src = "
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            C(x, y) :- V(x), V(y), !S(x, y).
        ";
        let p = parse_program(src).unwrap();
        let rw = rewrite_stratified(&p, &atom("C", &[c("v0"), v("y")]));
        let printed = rw.program.to_string();
        // The negated S is NOT adorned; S's original rules ride along.
        assert!(
            printed.contains("C#bf(x, y) :- M#C#bf(x), V(x), V(y), !S(x, y)."),
            "{printed}"
        );
        assert!(printed.contains("S(x, y) :- E(x, y)."), "{printed}");
        assert!(
            printed.contains("S(x, y) :- E(x, z), S(z, y)."),
            "{printed}"
        );
        // And no magic rules demand S.
        assert!(!printed.contains("M#S"), "{printed}");
    }

    #[test]
    fn cone_rewrite_for_win_move() {
        let p = parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
        let rw = rewrite_cone(&p, &atom("Win", &[c("v3")]));
        assert_eq!(rw.goal_pred, "Win#b");
        let demand = rw.demand.to_string();
        // Demand = forward reachability over Move, crossing the negation.
        assert!(demand.contains("M#Win#b('v3')."), "{demand}");
        assert!(
            demand.contains("M#Win#b(y) :- M#Win#b(x), Move(x, y)."),
            "{demand}"
        );
        // Demand program is positive (evaluable as a least fixpoint).
        assert!(rw.demand.is_positive(), "{demand}");
        // Guarded phase reads magic as EDB and adorns the negation.
        let guarded = rw.guarded.to_string();
        assert!(
            guarded.contains("Win#b(x) :- M#Win#b(x), Move(x, y), !Win#b(y)."),
            "{guarded}"
        );
        assert_eq!(rw.magic_preds, vec!["M#Win#b".to_string()]);
        // Phase 2 defines no magic predicates.
        assert!(!rw
            .guarded
            .rules
            .iter()
            .any(|r| r.head.predicate.starts_with("M#")));
    }

    #[test]
    fn cone_pot_rules_drop_negations() {
        let src = "Win(x) :- Move(x, y), !Win(y). Safe(x) :- Move(x, y), !Win(x), Win(y).";
        let p = parse_program(src).unwrap();
        let rw = rewrite_cone(&p, &atom("Safe", &[c("v0")]));
        let demand = rw.demand.to_string();
        // The P# over-approximation of Safe keeps Move and the positive Win
        // occurrence (as P#) but drops the negation.
        assert!(
            demand.contains("P#Safe#b(x) :- M#Safe#b(x), Move(x, y), P#Win#b(y)."),
            "{demand}"
        );
        // The positive Win occurrence is demanded through the positivized
        // prefix (Move only — the dropped negation binds nothing anyway).
        assert!(
            demand.contains("M#Win#b(y) :- M#Safe#b(x), Move(x, y)."),
            "{demand}"
        );
        assert!(rw.demand.is_positive(), "{demand}");
    }

    #[test]
    fn equality_binds_for_adornment() {
        let src = "Q(x) :- R(x). P(x, y) :- V(x), x = y, Q(y).";
        let p = parse_program(src).unwrap();
        let rw = rewrite_stratified(&p, &atom("P", &[v("a"), v("b")]));
        let printed = rw.program.to_string();
        // y is bound through x = y before the Q occurrence: pattern b.
        assert!(printed.contains("M#Q#b(y)"), "{printed}");
    }

    #[test]
    fn repeated_demand_patterns_are_deduplicated() {
        let src = "S(x, y) :- E(x, y). S(x, y) :- S(x, z), S(z, y).";
        let p = parse_program(src).unwrap();
        let rw = rewrite_stratified(&p, &atom("S", &[c("v0"), v("y")]));
        // Patterns reached: bf (goal, left occurrence) and bf again for the
        // right occurrence (z bound by the left) — exactly the distinct set
        // {bf} of adorned copies of S, each defined twice (two rules).
        let adorned: BTreeSet<&str> = rw
            .program
            .rules
            .iter()
            .map(|r| r.head.predicate.as_str())
            .filter(|p| p.starts_with("S#"))
            .collect();
        assert_eq!(adorned, BTreeSet::from(["S#bf"]));
    }

    #[test]
    #[should_panic(expected = "IDB goal")]
    fn edb_goal_panics() {
        let p = parse_program(TC).unwrap();
        rewrite_stratified(&p, &atom("E", &[c("v0"), v("y")]));
    }
}
