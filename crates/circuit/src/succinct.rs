//! Succinct graphs: a circuit with `2n` inputs presents a graph on `{0,1}^n`.

use crate::circuit::Circuit;
use inflog_core::graphs::DiGraph;

/// A graph on `{0,1}^n`, presented by a circuit with `2n` inputs: the
/// circuit accepts `(ū, v̄)` iff `ū → v̄` is an edge (the paper's SUCCINCT
/// representation after \[PY86\]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuccinctGraph {
    n: usize,
    circuit: Circuit,
}

impl SuccinctGraph {
    /// Wraps a circuit presenting a graph on `{0,1}^n`.
    ///
    /// # Panics
    /// Panics unless the circuit has exactly `2n` inputs.
    pub fn new(n: usize, circuit: Circuit) -> Self {
        assert_eq!(circuit.num_inputs(), 2 * n, "circuit must have 2n inputs");
        SuccinctGraph { n, circuit }
    }

    /// Number of vertex bits `n` (the graph has `2^n` vertices).
    pub fn bits(&self) -> usize {
        self.n
    }

    /// Number of vertices `2^n`.
    pub fn num_vertices(&self) -> usize {
        1usize << self.n
    }

    /// The presenting circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Adjacency query: is `u → v` an edge? Vertex ids are read as `n`-bit
    /// numbers, most significant bit first.
    pub fn adjacent(&self, u: usize, v: usize) -> bool {
        let inputs = self.encode_pair(u, v);
        self.circuit.eval(&inputs)
    }

    /// Encodes a vertex pair as the circuit's `2n` input bits (`ū` then
    /// `v̄`, MSB first within each).
    pub fn encode_pair(&self, u: usize, v: usize) -> Vec<bool> {
        let mut bits = Vec::with_capacity(2 * self.n);
        for i in (0..self.n).rev() {
            bits.push(u >> i & 1 == 1);
        }
        for i in (0..self.n).rev() {
            bits.push(v >> i & 1 == 1);
        }
        bits
    }

    /// Expands to the explicit graph: `2^{2n}` circuit evaluations — the
    /// exponential blowup Theorem 4 exploits (measured in E5/E10).
    pub fn expand(&self) -> DiGraph {
        let n = self.num_vertices();
        let mut g = DiGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if self.adjacent(u, v) {
                    g.add_edge(u as u32, v as u32);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;

    /// Complete digraph with self-loops: circuit is constant true.
    fn complete_sg(n: usize) -> SuccinctGraph {
        let mut b = CircuitBuilder::new(2 * n);
        let f = b.constant_false();
        let t = b.not(f);
        SuccinctGraph::new(n, b.finish(t))
    }

    #[test]
    fn constant_true_circuit_gives_complete_graph() {
        let sg = complete_sg(2);
        assert_eq!(sg.num_vertices(), 4);
        let g = sg.expand();
        assert_eq!(g.num_edges(), 16);
    }

    #[test]
    fn encode_pair_is_msb_first() {
        let sg = complete_sg(2);
        let bits = sg.encode_pair(0b10, 0b01);
        assert_eq!(bits, vec![true, false, false, true]);
    }

    #[test]
    fn adjacency_matches_expansion() {
        // u -> v iff first bit of u is 1.
        let mut b = CircuitBuilder::new(4);
        let g0 = b.input(0);
        let sg = SuccinctGraph::new(2, b.finish(g0));
        let g = sg.expand();
        for u in 0..4usize {
            for v in 0..4usize {
                assert_eq!(
                    sg.adjacent(u, v),
                    g.has_edge(u as u32, v as u32),
                    "({u},{v})"
                );
            }
        }
        assert_eq!(g.num_edges(), 8); // u ∈ {2, 3} × 4 targets
    }

    #[test]
    #[should_panic(expected = "2n inputs")]
    fn wrong_input_count_panics() {
        let mut b = CircuitBuilder::new(3);
        let x = b.input(0);
        let _ = SuccinctGraph::new(2, b.finish(x));
    }
}
