//! The Theorem 4 construction π_SC: succinct 3-colorability as fixpoint
//! existence of a DATALOG¬ program over the binary domain.
//!
//! For each gate `g_i` of the presenting circuit there is a `2n`-ary IDB
//! relation `Gi(x̄, ȳ)` meant to hold exactly the bit-tuples on which the
//! gate outputs 1:
//!
//! ```text
//! AND:  Gi(x̄,ȳ) <- Gb(x̄,ȳ), Gc(x̄,ȳ)
//! OR:   Gi(x̄,ȳ) <- Gb(x̄,ȳ)        and     Gi(x̄,ȳ) <- Gc(x̄,ȳ)
//! NOT:  Gi(x̄,ȳ) <- !Gb(x̄,ȳ)
//! IN j: Gi(z̄ with 1 at position j) <- .
//! ```
//!
//! The output gate *is* the edge relation `E`, and the (generalized,
//! `n`-tuple-vertex) 3-coloring program π_COL is stacked on top. In any
//! fixpoint the gate relations are forced to the circuit's semantics
//! bottom-up, so a fixpoint exists iff the presented graph is 3-colorable.
//! The universe is fixed to `{0, 1}` (the paper notes this is no departure
//! from the framework).

use crate::succinct::SuccinctGraph;
use inflog_core::{Database, Universe};
use inflog_syntax::{cst, neg, pos, rule, var, Program, ProgramBuilder, Term};

/// The generalized 3-coloring program π_COL over `k`-tuple vertices, with
/// the edge relation named `edge_pred` (`2k`-ary).
///
/// With `k = 1` and `edge_pred = "E"` this is literally the paper's π_COL.
/// Predicates: `Red`, `Blu`, `Grn` (the color guesses), `P` (violations),
/// `T` (the toggle).
pub fn pi_col_generalized(k: usize, edge_pred: &str) -> Program {
    let xs: Vec<Term> = (0..k).map(|i| var(format!("x{i}"))).collect();
    let ys: Vec<Term> = (0..k).map(|i| var(format!("y{i}"))).collect();
    let xy: Vec<Term> = xs.iter().chain(&ys).cloned().collect();

    let mut b = ProgramBuilder::new();
    // Color guesses become non-database relations via identity rules.
    for color in ["Red", "Blu", "Grn"] {
        b = b.push(rule((color, xs.clone()), vec![pos(color, xs.clone())]));
    }
    // Monochromatic edges are violations.
    for color in ["Red", "Blu", "Grn"] {
        b = b.push(rule(
            ("P", xs.clone()),
            vec![
                pos(edge_pred, xy.clone()),
                pos(color, xs.clone()),
                pos(color, ys.clone()),
            ],
        ));
    }
    // Two colors on one vertex.
    for (c1, c2) in [("Grn", "Blu"), ("Blu", "Red"), ("Red", "Grn")] {
        b = b.push(rule(
            ("P", xs.clone()),
            vec![pos(c1, xs.clone()), pos(c2, xs.clone())],
        ));
    }
    // Uncolored vertices.
    b = b.push(rule(
        ("P", xs.clone()),
        vec![
            neg("Red", xs.clone()),
            neg("Blu", xs.clone()),
            neg("Grn", xs.clone()),
        ],
    ));
    // The toggle: any violation kills all fixpoints.
    b = b.push(rule(
        ("T", vec![var("z")]),
        vec![pos("P", xs.clone()), neg("T", vec![var("w")])],
    ));
    b.build()
}

/// The Theorem 4 reduction output.
#[derive(Debug, Clone)]
pub struct SuccinctReduction {
    /// The program π_SC (gate rules + generalized π_COL).
    pub program: Program,
    /// The database: universe `{0, 1}`, no stored relations.
    pub database: Database,
    /// The gate predicate acting as the edge relation (`G<output>`).
    pub edge_pred: String,
    /// Vertex bits `n`.
    pub bits: usize,
}

/// Builds π_SC for a succinct graph (Theorem 4).
pub fn succinct_coloring_reduction(sg: &SuccinctGraph) -> SuccinctReduction {
    let n = sg.bits();
    let two_n = 2 * n;
    let gate_pred = |i: usize| format!("G{i}");

    let zs: Vec<Term> = (0..two_n).map(|i| var(format!("z{i}"))).collect();
    let mut b = ProgramBuilder::new();
    for (i, gate) in sg.circuit().gates().iter().enumerate() {
        use crate::circuit::Gate;
        match *gate {
            Gate::Input(j) => {
                // Gi(z0,...,1 at j,...,z_{2n-1}) <- .
                let mut head = zs.clone();
                head[j] = cst("1");
                b = b.push(rule((gate_pred(i), head), vec![]));
            }
            Gate::And(p, q) => {
                b = b.push(rule(
                    (gate_pred(i), zs.clone()),
                    vec![pos(gate_pred(p), zs.clone()), pos(gate_pred(q), zs.clone())],
                ));
            }
            Gate::Or(p, q) => {
                b = b.push(rule(
                    (gate_pred(i), zs.clone()),
                    vec![pos(gate_pred(p), zs.clone())],
                ));
                b = b.push(rule(
                    (gate_pred(i), zs.clone()),
                    vec![pos(gate_pred(q), zs.clone())],
                ));
            }
            Gate::Not(p) => {
                b = b.push(rule(
                    (gate_pred(i), zs.clone()),
                    vec![neg(gate_pred(p), zs.clone())],
                ));
            }
        }
    }

    let edge_pred = gate_pred(sg.circuit().num_gates() - 1);
    let program = b.extend(&pi_col_generalized(n, &edge_pred)).build();

    // Fixed binary universe {0, 1}; the program has no database relations.
    let database = Database::with_universe(Universe::range(2));

    SuccinctReduction {
        program,
        database,
        edge_pred,
        bits: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{from_explicit_graph, hypercube, succinct_cycle};
    use inflog_core::graphs::DiGraph;
    use inflog_core::Tuple;
    use inflog_fixpoint::FixpointAnalyzer;

    /// Brute-force 3-colorability of a digraph viewed as an undirected
    /// graph; self-loops make it uncolorable.
    fn is_3colorable(g: &DiGraph) -> bool {
        let n = g.num_vertices();
        if n == 0 {
            return true;
        }
        let mut colors = vec![0u8; n];
        loop {
            let ok = g
                .edges()
                .all(|(u, v)| u != v && colors[u as usize] != colors[v as usize]);
            if ok {
                return true;
            }
            // Next assignment in base 3.
            let mut i = 0;
            loop {
                if i == n {
                    return false;
                }
                colors[i] += 1;
                if colors[i] < 3 {
                    break;
                }
                colors[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn brute_checker_sanity() {
        assert!(is_3colorable(&DiGraph::cycle(3)));
        assert!(is_3colorable(&DiGraph::cycle(5)));
        assert!(!is_3colorable(&DiGraph::complete(4)));
        assert!(is_3colorable(&DiGraph::complete(3)));
        assert!(is_3colorable(&DiGraph::petersen()));
        let mut loopy = DiGraph::new(1);
        loopy.add_edge(0, 0);
        assert!(!is_3colorable(&loopy));
    }

    #[test]
    fn explicit_pi_col_via_generalized_k1() {
        // π_COL with k = 1 on explicit graphs: Lemma 1.
        for (g, expect) in [
            (DiGraph::cycle(3), true),
            (DiGraph::complete(4), false),
            (DiGraph::complete(3), true),
            (DiGraph::path(4), true),
        ] {
            let program = pi_col_generalized(1, "E");
            let db = g.to_database("E");
            let analyzer = FixpointAnalyzer::new(&program, &db).unwrap();
            assert_eq!(
                analyzer.fixpoint_exists(),
                expect,
                "Lemma 1 on {g} (expect {expect})"
            );
            assert_eq!(is_3colorable(&g), expect, "checker on {g}");
        }
    }

    #[test]
    fn gate_relations_forced_to_circuit_semantics() {
        // In any fixpoint, each Gi holds exactly the gate-i-true tuples.
        let sg = succinct_cycle(1); // 2-cycle; 3-colorable
        let red = succinct_coloring_reduction(&sg);
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).unwrap();
        let fix = analyzer.find_fixpoint().expect("2-cycle is colorable");
        let cp = analyzer.compiled();
        for (i, _) in sg.circuit().gates().iter().enumerate() {
            let pred = format!("G{i}");
            let idx = cp.idb_id(&pred).unwrap();
            let rel = fix.get(idx);
            // Compare against direct circuit evaluation on all 2^{2n} inputs.
            for mask in 0u32..(1 << (2 * sg.bits())) {
                let bits: Vec<bool> = (0..2 * sg.bits())
                    .map(|b| mask >> (2 * sg.bits() - 1 - b) & 1 == 1)
                    .collect();
                let vals = sg.circuit().eval_all(&bits);
                let tuple =
                    Tuple::from_ids(&bits.iter().map(|&x| u32::from(x)).collect::<Vec<_>>());
                assert_eq!(rel.contains(&tuple), vals[i], "gate {i} on input {bits:?}");
            }
        }
    }

    #[test]
    fn theorem4_on_structured_families() {
        // Succinct graphs where 3-colorability is known.
        let cases: Vec<(SuccinctGraph, bool, &str)> = vec![
            (succinct_cycle(2), true, "C_4 succinct"),
            (hypercube(2), true, "Q_2 (bipartite)"),
            (hypercube(3), true, "Q_3 (bipartite)"),
        ];
        for (sg, expect, name) in cases {
            assert_eq!(is_3colorable(&sg.expand()), expect, "checker {name}");
            let red = succinct_coloring_reduction(&sg);
            let analyzer = FixpointAnalyzer::new(&red.program, &red.database).unwrap();
            assert_eq!(analyzer.fixpoint_exists(), expect, "Theorem 4 {name}");
        }
    }

    #[test]
    fn theorem4_negative_instance() {
        // K4 via the explicit encoder: not 3-colorable → no fixpoint.
        let sg = from_explicit_graph(&DiGraph::complete(4), 2);
        assert!(!is_3colorable(&sg.expand()));
        let red = succinct_coloring_reduction(&sg);
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).unwrap();
        assert!(!analyzer.fixpoint_exists(), "K4 must have no fixpoint");
    }

    #[test]
    fn theorem4_positive_explicit_instance() {
        // C5 (odd cycle, chromatic number 3) via the explicit encoder.
        let sg = from_explicit_graph(&DiGraph::cycle(5), 3);
        assert!(is_3colorable(&sg.expand()));
        let red = succinct_coloring_reduction(&sg);
        let analyzer = FixpointAnalyzer::new(&red.program, &red.database).unwrap();
        assert!(analyzer.fixpoint_exists());
    }

    #[test]
    fn reduction_program_shape() {
        let sg = succinct_cycle(2);
        let red = succinct_coloring_reduction(&sg);
        // Gate rules + 11 π_COL rules.
        assert!(red.program.len() > sg.circuit().num_gates());
        assert!(red.program.idb_predicates().contains(&red.edge_pred));
        assert!(red.program.edb_predicates().is_empty(), "no EDB relations");
        assert_eq!(red.database.universe_size(), 2);
        // Program is syntactically valid.
        let report = inflog_syntax::validate(&red.program);
        assert!(report.is_ok());
    }
}
