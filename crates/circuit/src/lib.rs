//! # inflog-circuit
//!
//! Boolean circuits and succinct graph representations — the substrate of
//! Theorem 4 of *"Why Not Negation by Fixpoint?"* (expression complexity /
//! NEXP-hardness via SUCCINCT 3-COLORING).
//!
//! A Boolean circuit with `2n` inputs *presents* a graph on `{0,1}^n`: the
//! circuit outputs 1 on `(ū, v̄)` iff `ū → v̄` is an edge. The paper (after
//! \[PY86\]) uses this exponentially compressed representation to show that
//! fixpoint existence with the *program as part of the input* is
//! NEXP-complete: the construction π_SC turns each gate into a `2n`-ary
//! IDB relation over the binary domain and stacks the 3-coloring program
//! π_COL on the output gate.
//!
//! * [`circuit`] — gates `{IN, AND, OR, NOT}` in topological order,
//!   evaluation, a builder;
//! * [`succinct`] — succinct graphs: adjacency queries and (exponential)
//!   expansion to an explicit [`DiGraph`](inflog_core::graphs::DiGraph);
//! * [`encode`] — circuits from explicit graphs (DNF of the edge list) and
//!   structured families (hypercubes, succinct cycles via a ripple-carry
//!   successor circuit) whose graphs are exponentially larger than their
//!   circuits;
//! * [`to_datalog`] — the Theorem 4 construction: gate rules
//!   (`Gi(x̄,ȳ) <- Gb(x̄,ȳ), Gc(x̄,ȳ)` for AND, `Gi <- !Gb` for NOT,
//!   input-gate facts with constant heads) plus the generalized π_COL over
//!   `n`-tuple vertices, over the binary universe `{0, 1}`.

pub mod circuit;
pub mod encode;
pub mod succinct;
pub mod to_datalog;

pub use circuit::{Circuit, CircuitBuilder, Gate, NodeId};
pub use succinct::SuccinctGraph;
pub use to_datalog::{pi_col_generalized, succinct_coloring_reduction, SuccinctReduction};
