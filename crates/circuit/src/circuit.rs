//! Boolean circuits: the paper's `{(a_i, b_i, c_i)}` triples, as a
//! topologically ordered gate list.

use std::fmt;

/// A gate. Inputs reference earlier gates only (topological order is a
/// construction invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// The `j`-th circuit input.
    Input(usize),
    /// Conjunction of two earlier gates.
    And(usize, usize),
    /// Disjunction of two earlier gates.
    Or(usize, usize),
    /// Negation of an earlier gate.
    Not(usize),
}

/// A gate index returned by the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// A Boolean circuit with a designated output (the last gate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    num_inputs: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates a circuit from parts.
    ///
    /// # Panics
    /// Panics if a gate references a later/equal gate or an input out of
    /// range, or if the circuit has no gates.
    pub fn new(num_inputs: usize, gates: Vec<Gate>) -> Self {
        assert!(!gates.is_empty(), "circuit needs at least one gate");
        for (i, g) in gates.iter().enumerate() {
            match *g {
                Gate::Input(j) => assert!(j < num_inputs, "input {j} out of range"),
                Gate::And(a, b) | Gate::Or(a, b) => {
                    assert!(a < i && b < i, "gate {i} references a non-earlier gate")
                }
                Gate::Not(a) => assert!(a < i, "gate {i} references a non-earlier gate"),
            }
        }
        Circuit { num_inputs, gates }
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates (the paper's circuit size `k`).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Evaluates every gate; returns the full value vector.
    ///
    /// # Panics
    /// Panics if `inputs` has the wrong length.
    pub fn eval_all(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "wrong input arity");
        let mut vals = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match *g {
                Gate::Input(j) => inputs[j],
                Gate::And(a, b) => vals[a] && vals[b],
                Gate::Or(a, b) => vals[a] || vals[b],
                Gate::Not(a) => !vals[a],
            };
            vals.push(v);
        }
        vals
    }

    /// Evaluates the circuit output (the last gate).
    pub fn eval(&self, inputs: &[bool]) -> bool {
        *self.eval_all(inputs).last().expect("nonempty circuit")
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit({} inputs, {} gates)",
            self.num_inputs,
            self.gates.len()
        )
    }
}

/// Incremental circuit builder with structural helpers.
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    num_inputs: usize,
    gates: Vec<Gate>,
    /// Cached constant-false node, if materialized.
    const_false: Option<NodeId>,
}

impl CircuitBuilder {
    /// Starts a builder for a circuit with `num_inputs` inputs.
    pub fn new(num_inputs: usize) -> Self {
        CircuitBuilder {
            num_inputs,
            gates: Vec::new(),
            const_false: None,
        }
    }

    fn push(&mut self, g: Gate) -> NodeId {
        self.gates.push(g);
        NodeId(self.gates.len() - 1)
    }

    /// The `j`-th input.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    pub fn input(&mut self, j: usize) -> NodeId {
        assert!(j < self.num_inputs, "input {j} out of range");
        self.push(Gate::Input(j))
    }

    /// `a ∧ b`.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a.0, b.0))
    }

    /// `a ∨ b`.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a.0, b.0))
    }

    /// `¬a`.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a.0))
    }

    /// `a ↔ b` (built from AND/OR/NOT).
    pub fn iff(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let na = self.not(a);
        let nb = self.not(b);
        let both = self.and(a, b);
        let neither = self.and(na, nb);
        self.or(both, neither)
    }

    /// `a ⊕ b`.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let e = self.iff(a, b);
        self.not(e)
    }

    /// Constant false (`x0 ∧ ¬x0`; requires ≥ 1 input).
    ///
    /// # Panics
    /// Panics on a 0-input circuit.
    pub fn constant_false(&mut self) -> NodeId {
        if let Some(id) = self.const_false {
            return id;
        }
        let x = self.input(0);
        let nx = self.not(x);
        let id = self.and(x, nx);
        self.const_false = Some(id);
        id
    }

    /// Conjunction of many nodes (empty = constant true).
    pub fn and_many(&mut self, nodes: &[NodeId]) -> NodeId {
        match nodes.split_first() {
            None => {
                let f = self.constant_false();
                self.not(f)
            }
            Some((&first, rest)) => {
                let mut acc = first;
                for &n in rest {
                    acc = self.and(acc, n);
                }
                acc
            }
        }
    }

    /// Disjunction of many nodes (empty = constant false).
    pub fn or_many(&mut self, nodes: &[NodeId]) -> NodeId {
        match nodes.split_first() {
            None => self.constant_false(),
            Some((&first, rest)) => {
                let mut acc = first;
                for &n in rest {
                    acc = self.or(acc, n);
                }
                acc
            }
        }
    }

    /// Finishes the circuit with `out` as the output gate (re-emitted last
    /// if it is not already).
    pub fn finish(mut self, out: NodeId) -> Circuit {
        if out.0 != self.gates.len() - 1 {
            // Re-emit the output value at the end via a double negation.
            let n = self.not(out);
            self.not(n);
        }
        Circuit::new(self.num_inputs, self.gates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_gates() {
        let mut b = CircuitBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let g = b.and(x, y);
        let c = b.finish(g);
        assert!(c.eval(&[true, true]));
        assert!(!c.eval(&[true, false]));
        assert_eq!(c.num_gates(), 3);
    }

    #[test]
    fn xor_and_iff_truth_tables() {
        let mut b = CircuitBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let g = b.xor(x, y);
        let c = b.finish(g);
        for (vx, vy) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(c.eval(&[vx, vy]), vx ^ vy, "{vx} {vy}");
        }
        let mut b = CircuitBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let g = b.iff(x, y);
        let c = b.finish(g);
        for (vx, vy) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(c.eval(&[vx, vy]), vx == vy, "{vx} {vy}");
        }
    }

    #[test]
    fn constant_false_and_empty_connectives() {
        let mut b = CircuitBuilder::new(1);
        let f = b.constant_false();
        let c = b.finish(f);
        assert!(!c.eval(&[false]));
        assert!(!c.eval(&[true]));

        let mut b = CircuitBuilder::new(1);
        let t = b.and_many(&[]);
        let c = b.finish(t);
        assert!(c.eval(&[false]) && c.eval(&[true]));

        let mut b = CircuitBuilder::new(1);
        let f = b.or_many(&[]);
        let c = b.finish(f);
        assert!(!c.eval(&[false]) && !c.eval(&[true]));
    }

    #[test]
    fn finish_reemits_non_final_output() {
        let mut b = CircuitBuilder::new(1);
        let x = b.input(0);
        let _unused = b.not(x);
        let c = b.finish(x); // output is gate 0, not last
        assert!(c.eval(&[true]));
        assert!(!c.eval(&[false]));
    }

    #[test]
    fn many_gate_helpers() {
        let mut b = CircuitBuilder::new(3);
        let xs: Vec<NodeId> = (0..3).map(|i| b.input(i)).collect();
        let all = b.and_many(&xs);
        let c = b.finish(all);
        assert!(c.eval(&[true, true, true]));
        assert!(!c.eval(&[true, false, true]));

        let mut b = CircuitBuilder::new(3);
        let xs: Vec<NodeId> = (0..3).map(|i| b.input(i)).collect();
        let any = b.or_many(&xs);
        let c = b.finish(any);
        assert!(c.eval(&[false, false, true]));
        assert!(!c.eval(&[false, false, false]));
    }

    #[test]
    #[should_panic(expected = "non-earlier gate")]
    fn topological_violation_panics() {
        let _ = Circuit::new(1, vec![Gate::Not(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_out_of_range_panics() {
        let _ = Circuit::new(1, vec![Gate::Input(1)]);
    }

    #[test]
    #[should_panic(expected = "wrong input arity")]
    fn eval_wrong_arity_panics() {
        let mut b = CircuitBuilder::new(2);
        let x = b.input(0);
        let c = b.finish(x);
        let _ = c.eval(&[true]);
    }
}
