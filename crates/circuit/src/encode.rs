//! Circuit constructions: from explicit graphs (DNF of the edge list) and
//! structured succinct families whose circuits are exponentially smaller
//! than their graphs.

use crate::circuit::{CircuitBuilder, NodeId};
use crate::succinct::SuccinctGraph;
use inflog_core::graphs::DiGraph;

/// Encodes an explicit graph as a succinct graph on `n`-bit vertices:
/// one DNF term per edge (`2^n` must cover the vertex count).
///
/// # Panics
/// Panics if the graph has more than `2^bits` vertices.
pub fn from_explicit_graph(g: &DiGraph, bits: usize) -> SuccinctGraph {
    assert!(
        g.num_vertices() <= 1 << bits,
        "{} vertices exceed 2^{bits}",
        g.num_vertices()
    );
    let mut b = CircuitBuilder::new(2 * bits);
    // Literal tester: input bit i equals the given value.
    let mut edge_terms: Vec<NodeId> = Vec::with_capacity(g.num_edges());
    for (u, v) in g.edges() {
        let mut lits: Vec<NodeId> = Vec::with_capacity(2 * bits);
        for i in 0..bits {
            let want = (u as usize) >> (bits - 1 - i) & 1 == 1;
            let inp = b.input(i);
            lits.push(if want { inp } else { b.not(inp) });
        }
        for i in 0..bits {
            let want = (v as usize) >> (bits - 1 - i) & 1 == 1;
            let inp = b.input(bits + i);
            lits.push(if want { inp } else { b.not(inp) });
        }
        let term = b.and_many(&lits);
        edge_terms.push(term);
    }
    let out = b.or_many(&edge_terms);
    SuccinctGraph::new(bits, b.finish(out))
}

/// The `n`-dimensional hypercube, succinctly: `u → v` iff they differ in
/// exactly one bit. Circuit size Θ(n²); graph size `2^n` vertices,
/// `n·2^n` edges.
pub fn hypercube(bits: usize) -> SuccinctGraph {
    assert!(bits >= 1, "hypercube needs at least one bit");
    let mut b = CircuitBuilder::new(2 * bits);
    // diff_i = u_i XOR v_i.
    let diffs: Vec<NodeId> = (0..bits)
        .map(|i| {
            let ui = b.input(i);
            let vi = b.input(bits + i);
            b.xor(ui, vi)
        })
        .collect();
    // Exactly one diff: OR over i of (diff_i AND no other diff).
    let mut exactly: Vec<NodeId> = Vec::with_capacity(bits);
    for i in 0..bits {
        let others: Vec<NodeId> = (0..bits)
            .filter(|&j| j != i)
            .map(|j| b.not(diffs[j]))
            .collect();
        let mut term = diffs[i];
        for o in others {
            term = b.and(term, o);
        }
        exactly.push(term);
    }
    let out = b.or_many(&exactly);
    SuccinctGraph::new(bits, b.finish(out))
}

/// The directed cycle on `2^n` vertices, succinctly: `u → v` iff
/// `v = u + 1 (mod 2^n)`, via a ripple-carry successor circuit of size
/// Θ(n). The succinct analogue of the paper's `C_n` family: a cycle of
/// length `2^n` is even, so π₁ has fixpoints on it; dropping to an odd
/// cycle needs [`from_explicit_graph`].
pub fn succinct_cycle(bits: usize) -> SuccinctGraph {
    assert!(bits >= 1, "cycle needs at least one bit");
    let mut b = CircuitBuilder::new(2 * bits);
    // LSB is input index bits-1 (MSB-first encoding).
    // carry into LSB = 1; v_i must equal u_i XOR carry_i;
    // carry_{next} = u_i AND carry_i.
    let mut checks: Vec<NodeId> = Vec::with_capacity(bits);
    let mut carry: Option<NodeId> = None; // None = constant 1
    for pos in (0..bits).rev() {
        let u = b.input(pos);
        let v = b.input(bits + pos);
        let expected = match carry {
            None => b.not(u),       // u XOR 1
            Some(c) => b.xor(u, c), // u XOR carry
        };
        let ok = b.iff(v, expected);
        checks.push(ok);
        carry = Some(match carry {
            None => u, // u AND 1
            Some(c) => b.and(u, c),
        });
    }
    let out = b.and_many(&checks);
    SuccinctGraph::new(bits, b.finish(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn explicit_roundtrip_small_graphs() {
        let graphs = [
            DiGraph::path(4),
            DiGraph::cycle(3),
            DiGraph::complete(4),
            DiGraph::star(4),
        ];
        for g in graphs {
            let sg = from_explicit_graph(&g, 2);
            let back = sg.expand();
            for u in 0..4u32 {
                for v in 0..4u32 {
                    assert_eq!(g.has_edge(u, v), back.has_edge(u, v), "{g} ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn explicit_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = DiGraph::random_gnp(8, 0.3, &mut rng);
            let sg = from_explicit_graph(&g, 3);
            let back = sg.expand();
            assert_eq!(back.num_edges(), g.num_edges());
            for (u, v) in g.edges() {
                assert!(back.has_edge(u, v));
            }
        }
    }

    #[test]
    fn explicit_with_spare_bits() {
        // 3 vertices in a 2-bit space: vertex 3 must be isolated.
        let g = DiGraph::cycle(3);
        let sg = from_explicit_graph(&g, 2);
        let back = sg.expand();
        assert_eq!(back.num_edges(), 3);
        assert!(!back.has_edge(3, 0) && !back.has_edge(0, 3));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_vertices_panics() {
        let _ = from_explicit_graph(&DiGraph::path(5), 2);
    }

    #[test]
    fn hypercube_structure() {
        for bits in 1..=3usize {
            let sg = hypercube(bits);
            let g = sg.expand();
            assert_eq!(g.num_edges(), bits << bits, "n·2^n edges for n={bits}");
            for u in 0..sg.num_vertices() {
                for v in 0..sg.num_vertices() {
                    let expect = (u ^ v).count_ones() == 1;
                    assert_eq!(sg.adjacent(u, v), expect, "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn succinct_cycle_is_a_cycle() {
        for bits in 1..=4usize {
            let sg = succinct_cycle(bits);
            let g = sg.expand();
            let n = 1usize << bits;
            assert_eq!(g.num_edges(), n, "2^{bits}-cycle edge count");
            for u in 0..n {
                let succ: Vec<u32> = g.successors(u as u32).collect();
                assert_eq!(succ, vec![((u + 1) % n) as u32], "successor of {u}");
            }
        }
    }

    #[test]
    fn circuit_size_is_logarithmic_in_graph_size() {
        // The point of Theorem 4: circuit grows linearly in bits, graph
        // exponentially.
        let c3 = succinct_cycle(3);
        let c6 = succinct_cycle(6);
        assert!(c6.circuit().num_gates() < 2 * c3.circuit().num_gates() + 40);
        assert_eq!(c6.num_vertices(), 8 * c3.num_vertices());
    }
}
