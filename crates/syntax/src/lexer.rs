//! Tokenizer for the concrete DATALOG¬ syntax.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (predicate or variable name, classified by the parser).
    Ident(String),
    /// Numeric constant literal.
    Number(String),
    /// `'quoted'` constant literal (contents, unquoted).
    Quoted(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `:-` or `<-`
    Arrow,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Number(s) => write!(f, "number `{s}`"),
            Tok::Quoted(s) => write!(f, "constant `'{s}'`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Period => write!(f, "`.`"),
            Tok::Arrow => write!(f, "`:-`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Neq => write!(f, "`!=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Lexer errors (unexpected characters, unterminated quotes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, appending a final [`Tok::Eof`].
///
/// Comments run from `%` or `//` to end of line. Identifiers match
/// `[A-Za-z_][A-Za-z0-9_']*`.
///
/// # Errors
/// Fails on characters outside the grammar or unterminated quoted constants.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Token {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < chars.len() {
        let ch = chars[i];
        let (l0, c0) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match ch {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut col),
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '(' => {
                push!(Tok::LParen, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            ')' => {
                push!(Tok::RParen, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            ',' => {
                push!(Tok::Comma, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '.' => {
                push!(Tok::Period, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '=' => {
                push!(Tok::Eq, l0, c0);
                advance(&mut i, &mut line, &mut col);
            }
            '!' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Neq, l0, c0);
                } else {
                    push!(Tok::Bang, l0, c0);
                }
            }
            ':' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '-' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Arrow, l0, c0);
                } else {
                    return Err(LexError {
                        message: "expected `:-`".into(),
                        line: l0,
                        col: c0,
                    });
                }
            }
            '<' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '-' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Arrow, l0, c0);
                } else {
                    return Err(LexError {
                        message: "expected `<-`".into(),
                        line: l0,
                        col: c0,
                    });
                }
            }
            '\'' => {
                advance(&mut i, &mut line, &mut col);
                let start = i;
                while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
                if i >= chars.len() || chars[i] != '\'' {
                    return Err(LexError {
                        message: "unterminated quoted constant".into(),
                        line: l0,
                        col: c0,
                    });
                }
                let text: String = chars[start..i].iter().collect();
                advance(&mut i, &mut line, &mut col);
                push!(Tok::Quoted(text), l0, c0);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    advance(&mut i, &mut line, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                push!(Tok::Number(text), l0, c0);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '\'')
                {
                    // A quote directly after an identifier char is a prime
                    // (x', y''), common in the paper's variable names.
                    advance(&mut i, &mut line, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                push!(Tok::Ident(text), l0, c0);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: l0,
                    col: c0,
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_simple_rule() {
        let toks = kinds("T(x) :- E(y, x), !T(y).");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("T".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("E".into()),
                Tok::LParen,
                Tok::Ident("y".into()),
                Tok::Comma,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Comma,
                Tok::Bang,
                Tok::Ident("T".into()),
                Tok::LParen,
                Tok::Ident("y".into()),
                Tok::RParen,
                Tok::Period,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_alternate_arrow_and_neq() {
        assert_eq!(
            kinds("P(x) <- x != y."),
            vec![
                Tok::Ident("P".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("x".into()),
                Tok::Neq,
                Tok::Ident("y".into()),
                Tok::Period,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_numbers_and_quoted() {
        assert_eq!(
            kinds("G(1, 'ab c')."),
            vec![
                Tok::Ident("G".into()),
                Tok::LParen,
                Tok::Number("1".into()),
                Tok::Comma,
                Tok::Quoted("ab c".into()),
                Tok::RParen,
                Tok::Period,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_comments() {
        let toks = kinds("% whole line\nT(x). // trailing\nS(y).");
        let idents: Vec<&Tok> = toks.iter().filter(|t| matches!(t, Tok::Ident(_))).collect();
        assert_eq!(idents.len(), 4); // T, x, S, y
    }

    #[test]
    fn lex_primed_variables() {
        let toks = kinds("D(x, y, x', y').");
        let names: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["D", "x", "y", "x'", "y'"]);
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("T(x).\nS(y).").unwrap();
        let s = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("S".into()))
            .unwrap();
        assert_eq!((s.line, s.col), (2, 1));
    }

    #[test]
    fn error_unexpected_char() {
        let err = lex("T(x) :- #").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn error_unterminated_quote() {
        let err = lex("P('abc").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn error_lone_colon() {
        assert!(lex("T(x) : E(x).").is_err());
        assert!(lex("T(x) < E(x).").is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![Tok::Eof]);
        assert_eq!(kinds("  % only a comment"), vec![Tok::Eof]);
    }
}
