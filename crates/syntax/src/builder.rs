//! Programmatic construction of programs (no string parsing required).
//!
//! The Theorem 1 / Theorem 4 compilers build programs with generated
//! predicate names and long argument lists; doing that through concrete
//! syntax would be wasteful and error-prone. These helpers keep call sites
//! terse:
//!
//! ```
//! use inflog_syntax::{var, pos, neg, rule, ProgramBuilder};
//!
//! // pi_1:  T(x) <- E(y,x), !T(y)
//! let p = ProgramBuilder::new()
//!     .push(rule(
//!         ("T", vec![var("x")]),
//!         vec![pos("E", vec![var("y"), var("x")]), neg("T", vec![var("x")])],
//!     ))
//!     .build();
//! assert_eq!(p.len(), 1);
//! ```

use crate::ast::{Atom, Literal, Program, Rule, Term};

/// A variable term.
pub fn var(name: impl Into<String>) -> Term {
    Term::Var(name.into())
}

/// A constant term.
pub fn cst(name: impl Into<String>) -> Term {
    Term::Const(name.into())
}

/// An atom `pred(terms...)`.
pub fn atom(pred: impl Into<String>, terms: Vec<Term>) -> Atom {
    Atom::new(pred, terms)
}

/// A positive body literal.
pub fn pos(pred: impl Into<String>, terms: Vec<Term>) -> Literal {
    Literal::Pos(atom(pred, terms))
}

/// A negated body literal.
pub fn neg(pred: impl Into<String>, terms: Vec<Term>) -> Literal {
    Literal::Neg(atom(pred, terms))
}

/// A rule from a `(pred, terms)` head and a body.
pub fn rule(head: (impl Into<String>, Vec<Term>), body: Vec<Literal>) -> Rule {
    Rule::new(atom(head.0, head.1), body)
}

/// A fact-style rule (empty body).
pub fn fact(pred: impl Into<String>, terms: Vec<Term>) -> Rule {
    Rule::new(atom(pred, terms), Vec::new())
}

/// Incremental program builder.
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    rules: Vec<Rule>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule.
    #[must_use]
    pub fn push(mut self, r: Rule) -> Self {
        self.rules.push(r);
        self
    }

    /// Appends a rule by parts.
    #[must_use]
    pub fn rule(self, head: (impl Into<String>, Vec<Term>), body: Vec<Literal>) -> Self {
        self.push(rule(head, body))
    }

    /// Appends all rules of another program.
    #[must_use]
    pub fn extend(mut self, p: &Program) -> Self {
        self.rules.extend(p.rules.iter().cloned());
        self
    }

    /// Appends rules parsed from text.
    ///
    /// # Panics
    /// Panics on parse errors — builder text is developer-authored.
    #[must_use]
    pub fn parse(mut self, src: &str) -> Self {
        let p = crate::parser::parse_program(src)
            .unwrap_or_else(|e| panic!("builder parse error: {e}"));
        self.rules.extend(p.rules);
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> Program {
        Program::new(self.rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_parser() {
        let built = ProgramBuilder::new()
            .rule(
                ("T", vec![var("x")]),
                vec![pos("E", vec![var("y"), var("x")]), neg("T", vec![var("y")])],
            )
            .build();
        let parsed = crate::parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn fact_builder() {
        let built = ProgramBuilder::new()
            .push(fact("G", vec![var("z"), cst("1")]))
            .build();
        let parsed = crate::parse_program("G(z, 1).").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn extend_and_parse_mix() {
        let tc = crate::parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
        let p = ProgramBuilder::new()
            .extend(&tc)
            .parse("T(x) :- S(x, x).")
            .build();
        assert_eq!(p.len(), 3);
        assert!(p.idb_predicates().contains("T"));
    }

    #[test]
    #[should_panic(expected = "builder parse error")]
    fn parse_panics_on_bad_text() {
        let _ = ProgramBuilder::new().parse("oops(");
    }

    #[test]
    fn constants_roundtrip() {
        let p = ProgramBuilder::new()
            .push(fact("P", vec![cst("a b")]))
            .build();
        let printed = p.to_string();
        assert_eq!(printed.trim(), "P('a b').");
        assert_eq!(crate::parse_program(&printed).unwrap(), p);
    }
}
