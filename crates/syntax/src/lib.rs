//! # inflog-syntax
//!
//! Syntax for DATALOG¬ programs as defined in §2 of *"Why Not Negation by
//! Fixpoint?"*: finite sets of rules
//!
//! ```text
//! t0 <- t1, t2, ..., tr
//! ```
//!
//! where the body literals are equalities `x = y`, inequalities `x != y`,
//! atomic formulas `Q(x1,...,xn)`, or negated atomic formulas `!Q(x1,...,xn)`,
//! and the head is an atomic formula.
//!
//! Two paper-driven departures from "textbook" Datalog syntax:
//!
//! * **Heads may contain constants** — Theorem 4's input-gate rules are
//!   `Gi(z1,...,1,...,zn) <- .`;
//! * **Rules need not be safe/range-restricted** — the paper's pivotal rule is
//!   `T(z) <- !Q(u), !T(w)`, all of whose variables occur only under
//!   negation. Its semantics is domain-grounded (variables range over the
//!   universe `A`), so the engine accepts such rules; [`validate()`](validate()) reports
//!   them as *warnings* rather than errors.
//!
//! Concrete syntax accepted by [`parse_program`]:
//!
//! ```text
//! % transitive closure (the paper's pi_3)
//! S(x, y) :- E(x, y).
//! S(x, y) :- E(x, z), S(z, y).
//! % negation, inequality, constants:
//! T(x)    :- E(y, x), !T(y).
//! P(x)    :- x != y, V(y).
//! G1(z, 1).           % fact-style rule with a constant head
//! ```
//!
//! Predicates start with an uppercase letter; variables with a lowercase
//! letter or `_`; constants are numbers or `'quoted'` identifiers. `:-` and
//! `<-` are interchangeable; `%` and `//` start comments.

pub mod ast;
pub mod builder;
pub mod lexer;
pub mod parser;
pub mod validate;

pub use ast::{Atom, Literal, Program, Rule, Term};
pub use builder::{atom, cst, fact, neg, pos, rule, var, ProgramBuilder};
pub use parser::{parse_atom, parse_program, ParseError};
pub use validate::{validate, SafetyWarning, ValidationError};
