//! Abstract syntax for DATALOG¬ programs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A term in an atom: a variable or a (named) constant.
///
/// Constants are symbolic at the syntax level; evaluation resolves them
/// against the database universe.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable (lowercase identifier in concrete syntax).
    Var(String),
    /// A constant (number or quoted identifier in concrete syntax).
    Const(String),
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Whether this term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => {
                // Numbers print bare; other constants quoted (re-parseable).
                if c.chars().all(|ch| ch.is_ascii_digit()) && !c.is_empty() {
                    write!(f, "{c}")
                } else {
                    write!(f, "'{c}'")
                }
            }
        }
    }
}

/// An atomic formula `Q(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation symbol.
    pub predicate: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(predicate: impl Into<String>, terms: impl Into<Vec<Term>>) -> Self {
        Atom {
            predicate: predicate.into(),
            terms: terms.into(),
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the variables occurring in the atom (with repeats).
    pub fn variables(&self) -> impl Iterator<Item = &str> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: positive / negated atom, equality, or inequality —
/// exactly the four literal kinds the paper allows in rule bodies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// `Q(t̄)`
    Pos(Atom),
    /// `¬Q(t̄)`
    Neg(Atom),
    /// `t1 = t2`
    Eq(Term, Term),
    /// `t1 ≠ t2`
    Neq(Term, Term),
}

impl Literal {
    /// The atom underneath, if this is a (possibly negated) atom literal.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this literal mentions a relation negatively.
    pub fn is_negative_atom(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }

    /// Iterates over the variables occurring in the literal.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.variables().collect(),
            Literal::Eq(s, t) | Literal::Neq(s, t) => {
                s.as_var().into_iter().chain(t.as_var()).collect()
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "!{a}"),
            Literal::Eq(s, t) => write!(f, "{s} = {t}"),
            Literal::Neq(s, t) => write!(f, "{s} != {t}"),
        }
    }
}

/// A rule `head <- body` (empty body = fact-style rule).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Head atom (may contain constants).
    pub head: Atom,
    /// Body literals (conjunction; empty means the head holds for every
    /// instantiation of its variables over the universe).
    pub body: Vec<Literal>,
}

impl Rule {
    /// Creates a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// All variables of the rule (head and body), in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        let mut push = |v: &str| {
            if seen.insert(v.to_owned()) {
                out.push(v.to_owned());
            }
        };
        for v in self.head.variables() {
            push(v);
        }
        for lit in &self.body {
            for v in lit.variables() {
                push(v);
            }
        }
        out
    }

    /// Variables occurring in some *positive* body atom (the "bound"
    /// variables of classical safety).
    pub fn positively_bound_variables(&self) -> BTreeSet<String> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a),
                _ => None,
            })
            .flat_map(|a| a.variables().map(str::to_owned))
            .collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
        }
        write!(f, ".")
    }
}

/// A DATALOG¬ program: a finite set (here: ordered list) of rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Creates a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Parses a program from text (convenience for
    /// [`parse_program`](crate::parse_program)).
    ///
    /// # Errors
    /// Returns the underlying parse error.
    pub fn parse(src: &str) -> Result<Self, crate::parser::ParseError> {
        crate::parser::parse_program(src)
    }

    /// Predicate arities, first occurrence wins; inconsistencies are caught
    /// by [`validate`](crate::validate()).
    pub fn predicate_arities(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        let mut visit = |a: &Atom| {
            m.entry(a.predicate.clone()).or_insert(a.arity());
        };
        for r in &self.rules {
            visit(&r.head);
            for l in &r.body {
                if let Some(a) = l.atom() {
                    visit(a);
                }
            }
        }
        m
    }

    /// The **non-database** (IDB, intensional) relations: those that appear
    /// at the head of some rule.
    pub fn idb_predicates(&self) -> BTreeSet<String> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.clone())
            .collect()
    }

    /// The **database** (EDB, extensional) relations: those that appear only
    /// in rule bodies.
    pub fn edb_predicates(&self) -> BTreeSet<String> {
        let idb = self.idb_predicates();
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for l in &r.body {
                if let Some(a) = l.atom() {
                    if !idb.contains(&a.predicate) {
                        out.insert(a.predicate.clone());
                    }
                }
            }
        }
        out
    }

    /// Whether this is a **DATALOG** program in the paper's sense: no body
    /// literal is an inequality or a negated atom. (Equalities are harmless
    /// and permitted.)
    pub fn is_positive(&self) -> bool {
        self.rules.iter().all(|r| {
            r.body
                .iter()
                .all(|l| matches!(l, Literal::Pos(_) | Literal::Eq(_, _)))
        })
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The maximum number of variables in any single rule (drives the
    /// grounding cost `|A|^vars`).
    pub fn max_rule_variables(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.variables().len())
            .max()
            .unwrap_or(0)
    }

    /// All constants mentioned anywhere in the program.
    pub fn constants(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut visit_term = |t: &Term| {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        };
        for r in &self.rules {
            for t in &r.head.terms {
                visit_term(t);
            }
            for l in &r.body {
                match l {
                    Literal::Pos(a) | Literal::Neg(a) => a.terms.iter().for_each(&mut visit_term),
                    Literal::Eq(s, t) | Literal::Neq(s, t) => {
                        visit_term(s);
                        visit_term(t);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for Program {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Term {
        Term::Var(s.into())
    }

    fn c(s: &str) -> Term {
        Term::Const(s.into())
    }

    /// The paper's π₁: `T(x) <- E(y,x), !T(y)`.
    fn pi1() -> Program {
        Program::new(vec![Rule::new(
            Atom::new("T", vec![v("x")]),
            vec![
                Literal::Pos(Atom::new("E", vec![v("y"), v("x")])),
                Literal::Neg(Atom::new("T", vec![v("y")])),
            ],
        )])
    }

    #[test]
    fn idb_edb_classification() {
        let p = pi1();
        assert_eq!(
            p.idb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["T"]
        );
        assert_eq!(
            p.edb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["E"]
        );
    }

    #[test]
    fn positivity() {
        assert!(!pi1().is_positive());
        let tc = Program::new(vec![
            Rule::new(
                Atom::new("S", vec![v("x"), v("y")]),
                vec![Literal::Pos(Atom::new("E", vec![v("x"), v("y")]))],
            ),
            Rule::new(
                Atom::new("S", vec![v("x"), v("y")]),
                vec![
                    Literal::Pos(Atom::new("E", vec![v("x"), v("z")])),
                    Literal::Pos(Atom::new("S", vec![v("z"), v("y")])),
                ],
            ),
        ]);
        assert!(tc.is_positive());
        // Inequality disqualifies a program from being DATALOG.
        let with_neq = Program::new(vec![Rule::new(
            Atom::new("P", vec![v("x")]),
            vec![
                Literal::Pos(Atom::new("V", vec![v("x")])),
                Literal::Neq(v("x"), c("0")),
            ],
        )]);
        assert!(!with_neq.is_positive());
    }

    #[test]
    fn rule_variables_in_order() {
        let r = &pi1().rules[0];
        assert_eq!(r.variables(), vec!["x", "y"]);
        assert_eq!(
            r.positively_bound_variables()
                .into_iter()
                .collect::<Vec<_>>(),
            vec!["x", "y"]
        );
    }

    #[test]
    fn unsafe_rule_unbound_vars() {
        // T(z) <- !Q(u), !T(w): nothing positively bound.
        let r = Rule::new(
            Atom::new("T", vec![v("z")]),
            vec![
                Literal::Neg(Atom::new("Q", vec![v("u")])),
                Literal::Neg(Atom::new("T", vec![v("w")])),
            ],
        );
        assert!(r.positively_bound_variables().is_empty());
        assert_eq!(r.variables(), vec!["z", "u", "w"]);
    }

    #[test]
    fn display_round_shapes() {
        let p = pi1();
        assert_eq!(p.to_string(), "T(x) :- E(y, x), !T(y).\n");
        let fact = Rule::new(Atom::new("G", vec![v("z"), c("1")]), vec![]);
        assert_eq!(fact.to_string(), "G(z, 1).");
        let quoted = Rule::new(Atom::new("P", vec![c("abc")]), vec![]);
        assert_eq!(quoted.to_string(), "P('abc').");
    }

    #[test]
    fn predicate_arities() {
        let p = pi1();
        let m = p.predicate_arities();
        assert_eq!(m.get("T"), Some(&1));
        assert_eq!(m.get("E"), Some(&2));
    }

    #[test]
    fn constants_collected() {
        let r = Rule::new(
            Atom::new("G", vec![v("z"), c("1")]),
            vec![Literal::Neq(v("z"), c("0"))],
        );
        let p = Program::new(vec![r]);
        let cs: Vec<String> = p.constants().into_iter().collect();
        assert_eq!(cs, vec!["0", "1"]);
    }

    #[test]
    fn max_rule_variables() {
        assert_eq!(pi1().max_rule_variables(), 2);
        assert_eq!(Program::default().max_rule_variables(), 0);
    }

    #[test]
    fn literal_helpers() {
        let l = Literal::Neg(Atom::new("T", vec![v("y")]));
        assert!(l.is_negative_atom());
        assert_eq!(l.atom().unwrap().predicate, "T");
        let e = Literal::Eq(v("x"), c("1"));
        assert!(e.atom().is_none());
        assert_eq!(e.variables(), vec!["x"]);
    }
}
