//! Recursive-descent parser for DATALOG¬ programs.

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// Parse errors with source positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a whole program.
///
/// Grammar:
/// ```text
/// program  := rule*
/// rule     := atom ( (":-" | "<-") literals )? "."
/// literals := literal ("," literal)*
/// literal  := "!" atom | atom | term ("=" | "!=") term
/// atom     := PRED "(" (term ("," term)*)? ")" | PRED
/// term     := VAR | NUMBER | "'" text "'"
/// ```
/// `PRED` starts with an uppercase letter, `VAR` with lowercase or `_`.
/// A bare `PRED` (no parentheses) is a 0-ary (propositional) atom.
///
/// # Errors
/// Returns a [`ParseError`] with the position of the first offending token.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while p.peek() != &Tok::Eof {
        rules.push(p.rule()?);
    }
    Ok(Program::new(rules))
}

/// Parses a single atom, e.g. a query goal like `S('v0', y)` or `Win('v3')`.
///
/// Uses the same grammar as rule atoms; trailing input (other than an
/// optional `.`) is an error.
///
/// # Errors
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let atom = p.pred_atom()?;
    if p.peek() == &Tok::Period {
        p.bump();
    }
    if p.peek() != &Tok::Eof {
        return p.err(format!("unexpected input after atom: {}", p.peek()));
    }
    Ok(atom)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError {
            message: message.into(),
            line,
            col,
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head = self.head_atom()?;
        let body = if self.peek() == &Tok::Arrow {
            self.bump();
            // Allow an empty body after the arrow: `G(z, 1) :- .`
            if self.peek() == &Tok::Period {
                Vec::new()
            } else {
                self.literals()?
            }
        } else {
            Vec::new()
        };
        self.expect(Tok::Period)?;
        Ok(Rule::new(head, body))
    }

    fn literals(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut out = vec![self.literal()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            out.push(self.literal()?);
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.peek().clone() {
            Tok::Bang => {
                self.bump();
                let a = self.pred_atom()?;
                Ok(Literal::Neg(a))
            }
            Tok::Ident(name) if starts_upper(&name) => {
                let a = self.pred_atom()?;
                Ok(Literal::Pos(a))
            }
            Tok::Ident(_) | Tok::Number(_) | Tok::Quoted(_) => {
                let lhs = self.term()?;
                match self.bump() {
                    Tok::Eq => Ok(Literal::Eq(lhs, self.term()?)),
                    Tok::Neq => Ok(Literal::Neq(lhs, self.term()?)),
                    other => self.err(format!("expected `=` or `!=` after term, found {other}")),
                }
            }
            other => self.err(format!("expected a body literal, found {other}")),
        }
    }

    fn head_atom(&mut self) -> Result<Atom, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) if starts_upper(&name) => self.pred_atom(),
            other => self.err(format!(
                "expected a rule head (predicate starting uppercase), found {other}"
            )),
        }
    }

    fn pred_atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.bump() {
            Tok::Ident(name) if starts_upper(&name) => name,
            other => {
                return self.err(format!(
                    "expected a predicate (uppercase identifier), found {other}"
                ))
            }
        };
        let mut terms = Vec::new();
        if self.peek() == &Tok::LParen {
            self.bump();
            if self.peek() != &Tok::RParen {
                terms.push(self.term()?);
                while self.peek() == &Tok::Comma {
                    self.bump();
                    terms.push(self.term()?);
                }
            }
            self.expect(Tok::RParen)?;
        }
        Ok(Atom::new(name, terms))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Tok::Ident(name) if starts_upper(&name) => self.err(format!(
                "`{name}` starts uppercase: predicates cannot appear as terms"
            )),
            Tok::Ident(name) => Ok(Term::Var(name)),
            Tok::Number(n) => Ok(Term::Const(n)),
            Tok::Quoted(s) => Ok(Term::Const(s)),
            other => self.err(format!("expected a term, found {other}")),
        }
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_pi1() {
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        assert_eq!(p.len(), 1);
        let r = &p.rules[0];
        assert_eq!(r.head, Atom::new("T", vec![Term::Var("x".into())]));
        assert_eq!(r.body.len(), 2);
        assert!(matches!(r.body[1], Literal::Neg(_)));
    }

    #[test]
    fn parse_pi2_multiline() {
        let src = "
            S1(x, y) :- E(x, y).
            S1(x, y) :- E(x, z), S1(z, y).
            S2(x, y, z, w) :- S1(x, y), !S1(z, w).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.idb_predicates().len(), 2);
        assert_eq!(p.edb_predicates().len(), 1);
    }

    #[test]
    fn parse_facts_and_empty_bodies() {
        let p = parse_program("G(z, 1). H(x) :- .").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.rules[0].body.is_empty());
        assert!(p.rules[1].body.is_empty());
        assert_eq!(p.rules[0].head.terms[1], Term::Const("1".into()));
    }

    #[test]
    fn parse_equality_literals() {
        let p = parse_program("P(x) :- V(x), x != y, y = 'a'.").unwrap();
        let body = &p.rules[0].body;
        assert!(matches!(body[1], Literal::Neq(_, _)));
        assert!(
            matches!(&body[2], Literal::Eq(Term::Var(v), Term::Const(c)) if v == "y" && c == "a")
        );
    }

    #[test]
    fn parse_propositional_atoms() {
        let p = parse_program("Win :- !Lose.").unwrap();
        assert_eq!(p.rules[0].head.arity(), 0);
        assert_eq!(p.rules[0].body[0].atom().unwrap().arity(), 0);
    }

    #[test]
    fn parse_alternate_arrow() {
        let a = parse_program("T(x) <- E(x, y).").unwrap();
        let b = parse_program("T(x) :- E(x, y).").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_lowercase_head() {
        let e = parse_program("t(x) :- E(x, y).").unwrap_err();
        assert!(e.message.contains("rule head"), "{e}");
    }

    #[test]
    fn error_predicate_as_term() {
        let e = parse_program("T(X) :- E(x, y).").unwrap_err();
        assert!(
            e.message.contains("predicates cannot appear as terms"),
            "{e}"
        );
    }

    #[test]
    fn error_missing_period() {
        let e = parse_program("T(x) :- E(x, y)").unwrap_err();
        assert!(e.message.contains("`.`"), "{e}");
    }

    #[test]
    fn error_dangling_comma() {
        assert!(parse_program("T(x) :- E(x, y), .").is_err());
    }

    #[test]
    fn error_positions() {
        let e = parse_program("T(x) :- E(x, y).\nbad(x).").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 1);
    }

    #[test]
    fn roundtrip_display_parse() {
        let srcs = [
            "T(x) :- E(y, x), !T(y).",
            "S2(x, y, z, w) :- S1(x, y), !S1(z, w).",
            "G(z, 1).",
            "P(x) :- V(x), x != y, y = 'a'.",
            "Win :- !Lose.",
            "D(x, y, x', y') :- E(x, z), S1(z, y), !S2(x', y').",
        ];
        for src in srcs {
            let p1 = parse_program(src).unwrap();
            let printed = p1.to_string();
            let p2 = parse_program(&printed).unwrap();
            assert_eq!(p1, p2, "round-trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn parse_atom_goal() {
        let a = parse_atom("S('v0', y)").unwrap();
        assert_eq!(a.predicate, "S");
        assert_eq!(
            a.terms,
            vec![Term::Const("v0".into()), Term::Var("y".into())]
        );
        // Optional trailing period; 0-ary goals.
        assert_eq!(parse_atom("S('v0', y).").unwrap(), a);
        assert_eq!(parse_atom("Win").unwrap().arity(), 0);
        // Malformed goals.
        assert!(parse_atom("s(x)").is_err());
        assert!(parse_atom("S(x), T(y)").is_err());
        assert!(parse_atom("").is_err());
    }

    #[test]
    fn empty_program() {
        let p = parse_program("  % nothing here\n").unwrap();
        assert!(p.is_empty());
    }
}
