//! Program validation: hard errors (arity conflicts, EDB heads against a
//! declared schema) and advisory safety warnings.
//!
//! The paper's semantics is domain-grounded, so classically "unsafe" rules
//! are *legal*; we still surface them as warnings because they are the
//! precise spots where a program's meaning depends on the whole universe
//! rather than the stored facts.

use crate::ast::{Literal, Program, Rule, Term};
use std::collections::BTreeMap;
use std::fmt;

/// Hard validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A predicate is used with two different arities.
    ArityConflict {
        /// Predicate name.
        predicate: String,
        /// First-seen arity.
        first: usize,
        /// Conflicting arity.
        second: usize,
        /// Index of the rule where the conflict was detected.
        rule_index: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ArityConflict {
                predicate,
                first,
                second,
                rule_index,
            } => write!(
                f,
                "rule {rule_index}: predicate `{predicate}` used with arity {second} \
                 but previously with arity {first}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Advisory warnings about classically unsafe constructs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyWarning {
    /// A head variable is not bound by any positive body atom; it ranges
    /// over the whole universe.
    UnboundHeadVariable {
        /// Index of the rule.
        rule_index: usize,
        /// The variable.
        variable: String,
    },
    /// A variable occurring only in negated atoms / (in)equalities; it
    /// ranges over the whole universe.
    UnboundBodyVariable {
        /// Index of the rule.
        rule_index: usize,
        /// The variable.
        variable: String,
    },
}

impl fmt::Display for SafetyWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyWarning::UnboundHeadVariable {
                rule_index,
                variable,
            } => write!(
                f,
                "rule {rule_index}: head variable `{variable}` is not bound by a positive \
                 body atom (it ranges over the whole universe)"
            ),
            SafetyWarning::UnboundBodyVariable {
                rule_index,
                variable,
            } => write!(
                f,
                "rule {rule_index}: variable `{variable}` occurs only under negation or in \
                 (in)equalities (it ranges over the whole universe)"
            ),
        }
    }
}

/// Validation report: the program is usable iff `errors` is empty.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Hard errors.
    pub errors: Vec<ValidationError>,
    /// Advisory warnings.
    pub warnings: Vec<SafetyWarning>,
}

impl Report {
    /// Whether the program passed (warnings allowed).
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Whether the program is classically safe (no warnings either).
    pub fn is_safe(&self) -> bool {
        self.is_ok() && self.warnings.is_empty()
    }
}

/// Validates a program; see [`Report`].
pub fn validate(program: &Program) -> Report {
    let mut report = Report::default();
    let mut arities: BTreeMap<String, usize> = BTreeMap::new();

    let mut check_arity = |pred: &str, arity: usize, rule_index: usize, report: &mut Report| {
        match arities.get(pred) {
            Some(&a) if a != arity => report.errors.push(ValidationError::ArityConflict {
                predicate: pred.to_owned(),
                first: a,
                second: arity,
                rule_index,
            }),
            Some(_) => {}
            None => {
                arities.insert(pred.to_owned(), arity);
            }
        }
    };

    for (i, rule) in program.rules.iter().enumerate() {
        check_arity(&rule.head.predicate, rule.head.arity(), i, &mut report);
        for lit in &rule.body {
            if let Some(a) = lit.atom() {
                check_arity(&a.predicate, a.arity(), i, &mut report);
            }
        }
        safety_warnings(rule, i, &mut report);
    }
    report
}

/// Computes binding-aware safety warnings for one rule.
///
/// Binding propagates through equalities: `x = 'a'` binds `x`; `x = y` binds
/// either side once the other is bound (iterated to fixpoint).
fn safety_warnings(rule: &Rule, rule_index: usize, report: &mut Report) {
    let mut bound = rule.positively_bound_variables();
    // Propagate bindings through equality literals.
    loop {
        let mut changed = false;
        for lit in &rule.body {
            if let Literal::Eq(s, t) = lit {
                match (s, t) {
                    (Term::Var(a), Term::Const(_)) => changed |= bound.insert(a.clone()),
                    (Term::Const(_), Term::Var(b)) => changed |= bound.insert(b.clone()),
                    (Term::Var(a), Term::Var(b)) => {
                        if bound.contains(a) && !bound.contains(b) {
                            bound.insert(b.clone());
                            changed = true;
                        } else if bound.contains(b) && !bound.contains(a) {
                            bound.insert(a.clone());
                            changed = true;
                        }
                    }
                    (Term::Const(_), Term::Const(_)) => {}
                }
            }
        }
        if !changed {
            break;
        }
    }

    for v in rule.head.variables() {
        if !bound.contains(v) {
            report.warnings.push(SafetyWarning::UnboundHeadVariable {
                rule_index,
                variable: v.to_owned(),
            });
        }
    }
    let mut seen_warned: Vec<String> = rule
        .head
        .variables()
        .filter(|v| !bound.contains(*v))
        .map(str::to_owned)
        .collect();
    for lit in &rule.body {
        for v in lit.variables() {
            if !bound.contains(v) && !seen_warned.iter().any(|w| w == v) {
                seen_warned.push(v.to_owned());
                report.warnings.push(SafetyWarning::UnboundBodyVariable {
                    rule_index,
                    variable: v.to_owned(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn safe_program_is_clean() {
        let p = parse_program("S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).").unwrap();
        let r = validate(&p);
        assert!(r.is_ok());
        assert!(r.is_safe());
    }

    #[test]
    fn pi1_is_safe() {
        let p = parse_program("T(x) :- E(y, x), !T(y).").unwrap();
        assert!(validate(&p).is_safe());
    }

    #[test]
    fn toggle_rule_warns_but_passes() {
        // T(z) <- !Q(u), !T(w): legal per the paper, unsafe classically.
        let p = parse_program("T(z) :- !Q(u), !T(w).").unwrap();
        let r = validate(&p);
        assert!(r.is_ok());
        assert!(!r.is_safe());
        // z unbound in head; u, w unbound in body.
        assert_eq!(r.warnings.len(), 3);
        assert!(matches!(
            r.warnings[0],
            SafetyWarning::UnboundHeadVariable { ref variable, .. } if variable == "z"
        ));
    }

    #[test]
    fn arity_conflict_is_error() {
        let p = parse_program("T(x) :- E(x, y). T(x, y) :- E(x, y).").unwrap();
        let r = validate(&p);
        assert!(!r.is_ok());
        assert!(matches!(
            r.errors[0],
            ValidationError::ArityConflict { ref predicate, first: 1, second: 2, rule_index: 1 }
                if predicate == "T"
        ));
    }

    #[test]
    fn equality_binds_variables() {
        // y is bound through x = y with x positively bound; z via constant.
        let p = parse_program("P(y, z) :- V(x), x = y, z = 'a'.").unwrap();
        let r = validate(&p);
        assert!(r.is_safe(), "warnings: {:?}", r.warnings);
    }

    #[test]
    fn equality_chain_binds() {
        let p = parse_program("P(w) :- V(x), x = y, y = w.").unwrap();
        assert!(validate(&p).is_safe());
    }

    #[test]
    fn inequality_does_not_bind() {
        let p = parse_program("P(y) :- V(x), x != y.").unwrap();
        let r = validate(&p);
        assert!(r.is_ok());
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn fact_with_variable_head_warns() {
        // Theorem 4 input-gate rules: head variables range over the universe.
        let p = parse_program("G(z, 1).").unwrap();
        let r = validate(&p);
        assert!(r.is_ok());
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn constant_only_fact_is_safe() {
        let p = parse_program("E(0, 1).").unwrap();
        assert!(validate(&p).is_safe());
    }

    #[test]
    fn warning_display() {
        let p = parse_program("T(z) :- !T(z).").unwrap();
        let r = validate(&p);
        let msg = r.warnings[0].to_string();
        assert!(msg.contains("head variable `z`"), "{msg}");
    }
}
