//! Normal-form transformations: NNF, prenex form, and DNF.
//!
//! These are the formula-massaging steps in the proof of Theorem 1: the
//! first-order part of the ∃SO sentence is brought to prenex normal form,
//! then (after Skolemization-by-relations, see [`eso`](crate::eso)) its
//! matrix is put in disjunctive normal form so that each disjunct becomes a
//! DATALOG¬ rule body.

use crate::fo::Fo;
use inflog_syntax::Term;

/// A quantifier kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Universal.
    Forall,
    /// Existential.
    Exists,
}

/// Rewrites to negation normal form: implications eliminated, negations
/// pushed to atoms/equalities.
pub fn nnf(f: &Fo) -> Fo {
    fn pos(f: &Fo) -> Fo {
        match f {
            Fo::True | Fo::False | Fo::Atom { .. } | Fo::Eq(_, _) => f.clone(),
            Fo::Not(g) => neg(g),
            Fo::And(gs) => Fo::And(gs.iter().map(pos).collect()),
            Fo::Or(gs) => Fo::Or(gs.iter().map(pos).collect()),
            Fo::Implies(a, b) => Fo::Or(vec![neg(a), pos(b)]),
            Fo::Forall(v, g) => Fo::Forall(v.clone(), Box::new(pos(g))),
            Fo::Exists(v, g) => Fo::Exists(v.clone(), Box::new(pos(g))),
        }
    }
    fn neg(f: &Fo) -> Fo {
        match f {
            Fo::True => Fo::False,
            Fo::False => Fo::True,
            Fo::Atom { .. } | Fo::Eq(_, _) => Fo::Not(Box::new(f.clone())),
            Fo::Not(g) => pos(g),
            Fo::And(gs) => Fo::Or(gs.iter().map(neg).collect()),
            Fo::Or(gs) => Fo::And(gs.iter().map(neg).collect()),
            Fo::Implies(a, b) => Fo::And(vec![pos(a), neg(b)]),
            Fo::Forall(v, g) => Fo::Exists(v.clone(), Box::new(neg(g))),
            Fo::Exists(v, g) => Fo::Forall(v.clone(), Box::new(neg(g))),
        }
    }
    pos(f)
}

/// Whether a formula is in NNF (negations only on atoms, no implications).
pub fn is_nnf(f: &Fo) -> bool {
    match f {
        Fo::True | Fo::False | Fo::Atom { .. } | Fo::Eq(_, _) => true,
        Fo::Not(g) => matches!(**g, Fo::Atom { .. } | Fo::Eq(_, _)),
        Fo::And(gs) | Fo::Or(gs) => gs.iter().all(is_nnf),
        Fo::Implies(_, _) => false,
        Fo::Forall(_, g) | Fo::Exists(_, g) => is_nnf(g),
    }
}

/// Brings an NNF formula to prenex form with **globally fresh** variable
/// names `q0, q1, ...` (capture-free by construction). Returns the prefix
/// (outermost first) and the quantifier-free matrix.
///
/// Free variables are left untouched.
///
/// # Panics
/// Panics if the input is not in NNF (callers apply [`nnf`] first).
pub fn prenex(f: &Fo) -> (Vec<(Quant, String)>, Fo) {
    assert!(is_nnf(f), "prenex requires NNF input");
    let mut counter = 0usize;
    let mut prefix = Vec::new();
    let matrix = go(f, &mut Vec::new(), &mut prefix, &mut counter);
    return (prefix, matrix);

    /// `renames` maps original bound names to fresh names (a stack to
    /// handle shadowing).
    fn go(
        f: &Fo,
        renames: &mut Vec<(String, String)>,
        prefix: &mut Vec<(Quant, String)>,
        counter: &mut usize,
    ) -> Fo {
        match f {
            Fo::True | Fo::False => f.clone(),
            Fo::Atom { pred, terms } => Fo::Atom {
                pred: pred.clone(),
                terms: terms.iter().map(|t| rename_term(t, renames)).collect(),
            },
            Fo::Eq(a, b) => Fo::Eq(rename_term(a, renames), rename_term(b, renames)),
            Fo::Not(g) => go(g, renames, prefix, counter).negate(),
            Fo::And(gs) => Fo::And(gs.iter().map(|g| go(g, renames, prefix, counter)).collect()),
            Fo::Or(gs) => Fo::Or(gs.iter().map(|g| go(g, renames, prefix, counter)).collect()),
            Fo::Implies(_, _) => unreachable!("NNF has no implications"),
            Fo::Forall(v, g) | Fo::Exists(v, g) => {
                let q = if matches!(f, Fo::Forall(_, _)) {
                    Quant::Forall
                } else {
                    Quant::Exists
                };
                let fresh = format!("q{counter}");
                *counter += 1;
                prefix.push((q, fresh.clone()));
                renames.push((v.clone(), fresh));
                let m = go(g, renames, prefix, counter);
                renames.pop();
                m
            }
        }
    }

    fn rename_term(t: &Term, renames: &[(String, String)]) -> Term {
        match t {
            Term::Var(v) => {
                for (from, to) in renames.iter().rev() {
                    if from == v {
                        return Term::Var(to.clone());
                    }
                }
                Term::Var(v.clone())
            }
            Term::Const(_) => t.clone(),
        }
    }
}

/// A literal of a quantifier-free matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfLit {
    /// `pred(terms)`.
    Pos(String, Vec<Term>),
    /// `¬pred(terms)`.
    Neg(String, Vec<Term>),
    /// `a = b`.
    Eq(Term, Term),
    /// `a ≠ b`.
    Neq(Term, Term),
}

/// Converts a quantifier-free NNF matrix to DNF: a disjunction of
/// conjunctions of literals. `True` yields one empty conjunction; `False`
/// yields zero disjuncts.
///
/// # Panics
/// Panics on quantifiers or non-NNF input, or if the DNF exceeds
/// `max_disjuncts` (callers control blowup).
pub fn dnf(f: &Fo, max_disjuncts: usize) -> Vec<Vec<NfLit>> {
    let out = go(f, max_disjuncts);
    assert!(
        out.len() <= max_disjuncts,
        "DNF exceeded {max_disjuncts} disjuncts"
    );
    return out;

    fn go(f: &Fo, cap: usize) -> Vec<Vec<NfLit>> {
        match f {
            Fo::True => vec![vec![]],
            Fo::False => vec![],
            Fo::Atom { pred, terms } => vec![vec![NfLit::Pos(pred.clone(), terms.clone())]],
            Fo::Eq(a, b) => vec![vec![NfLit::Eq(a.clone(), b.clone())]],
            Fo::Not(g) => match &**g {
                Fo::Atom { pred, terms } => {
                    vec![vec![NfLit::Neg(pred.clone(), terms.clone())]]
                }
                Fo::Eq(a, b) => vec![vec![NfLit::Neq(a.clone(), b.clone())]],
                _ => panic!("dnf requires NNF input"),
            },
            Fo::Or(gs) => {
                let mut out = Vec::new();
                for g in gs {
                    out.extend(go(g, cap));
                    assert!(out.len() <= cap, "DNF exceeded {cap} disjuncts");
                }
                out
            }
            Fo::And(gs) => {
                let mut out: Vec<Vec<NfLit>> = vec![vec![]];
                for g in gs {
                    let parts = go(g, cap);
                    let mut next = Vec::with_capacity(out.len() * parts.len());
                    for a in &out {
                        for b in &parts {
                            let mut c = a.clone();
                            c.extend(b.iter().cloned());
                            next.push(c);
                        }
                    }
                    assert!(next.len() <= cap, "DNF exceeded {cap} disjuncts");
                    out = next;
                }
                out
            }
            Fo::Implies(_, _) | Fo::Forall(_, _) | Fo::Exists(_, _) => {
                panic!("dnf requires a quantifier-free NNF matrix")
            }
        }
    }
}

/// Rebuilds a formula from a prefix and matrix (for evaluation round-trips).
pub fn requantify(prefix: &[(Quant, String)], matrix: Fo) -> Fo {
    let mut f = matrix;
    for (q, v) in prefix.iter().rev() {
        f = match q {
            Quant::Forall => f.forall(v.clone()),
            Quant::Exists => f.exists(v.clone()),
        };
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::{eval_sentence, ExtraRelations};
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::var;

    fn e(x: &str, y: &str) -> Fo {
        Fo::atom("E", vec![var(x), var(y)])
    }

    #[test]
    fn nnf_pushes_negation() {
        let f = Fo::Not(Box::new(Fo::And(vec![e("x", "y"), e("y", "x").negate()])));
        let g = nnf(&f);
        assert!(is_nnf(&g));
        assert_eq!(g, Fo::Or(vec![e("x", "y").negate(), e("y", "x")]));
    }

    #[test]
    fn nnf_dualizes_quantifiers() {
        let f = Fo::Not(Box::new(e("x", "y").exists("y").forall("x")));
        let g = nnf(&f);
        assert_eq!(g, e("x", "y").negate().forall("y").exists("x"));
    }

    #[test]
    fn nnf_eliminates_implication() {
        let f = Fo::Implies(Box::new(e("x", "y")), Box::new(e("y", "x")));
        let g = nnf(&f);
        assert!(is_nnf(&g));
        assert_eq!(g, Fo::Or(vec![e("x", "y").negate(), e("y", "x")]));
    }

    #[test]
    fn nnf_preserves_truth() {
        let dbs = [
            DiGraph::path(3).to_database("E"),
            DiGraph::cycle(3).to_database("E"),
            DiGraph::complete(3).to_database("E"),
        ];
        let formulas = [
            Fo::Not(Box::new(e("x", "y").exists("y").forall("x"))),
            Fo::Implies(Box::new(e("x", "y")), Box::new(e("y", "x")))
                .forall("y")
                .forall("x"),
            Fo::Not(Box::new(Fo::And(vec![
                e("x", "y").exists("y"),
                e("y", "x").negate().forall("y"),
            ])))
            .forall("x"),
        ];
        for db in &dbs {
            for f in &formulas {
                assert_eq!(
                    eval_sentence(f, db, &ExtraRelations::new()),
                    eval_sentence(&nnf(f), db, &ExtraRelations::new()),
                    "formula {f} on {db}"
                );
            }
        }
    }

    #[test]
    fn prenex_extracts_prefix_in_order() {
        let f = nnf(&Fo::And(vec![
            e("x", "y").exists("y").forall("x"),
            e("u", "u").exists("u"),
        ]));
        let (prefix, matrix) = prenex(&f);
        assert_eq!(prefix.len(), 3);
        assert_eq!(prefix[0].0, Quant::Forall);
        assert_eq!(prefix[1].0, Quant::Exists);
        assert_eq!(prefix[2].0, Quant::Exists);
        assert!(matches!(matrix, Fo::And(_)));
    }

    #[test]
    fn prenex_preserves_truth() {
        let dbs = [
            DiGraph::path(4).to_database("E"),
            DiGraph::cycle(5).to_database("E"),
            DiGraph::star(4).to_database("E"),
        ];
        let formulas = [
            Fo::And(vec![
                e("x", "y").exists("y").forall("x"),
                e("u", "v").negate().forall("v").exists("u"),
            ]),
            Fo::Or(vec![
                e("x", "x").exists("x"),
                e("a", "b").exists("b").forall("a"),
            ]),
            // Shadowing: same name bound twice.
            Fo::And(vec![
                e("x", "y").exists("y"),
                e("x", "y").negate().exists("y"),
            ])
            .forall("x"),
        ];
        for db in &dbs {
            for f in &formulas {
                let n = nnf(f);
                let (prefix, matrix) = prenex(&n);
                let p = requantify(&prefix, matrix);
                assert_eq!(
                    eval_sentence(f, db, &ExtraRelations::new()),
                    eval_sentence(&p, db, &ExtraRelations::new()),
                    "formula {f}"
                );
            }
        }
    }

    #[test]
    fn dnf_simple_distribution() {
        // (a ∨ b) ∧ c  →  (a∧c) ∨ (b∧c)
        let f = Fo::And(vec![Fo::Or(vec![e("a", "a"), e("b", "b")]), e("c", "c")]);
        let d = dnf(&f, 100);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].len(), 2);
    }

    #[test]
    fn dnf_constants() {
        assert_eq!(dnf(&Fo::True, 10), vec![Vec::<NfLit>::new()]);
        assert!(dnf(&Fo::False, 10).is_empty());
    }

    #[test]
    fn dnf_negated_literals() {
        let f = Fo::And(vec![
            e("x", "y").negate(),
            Fo::Eq(var("x"), var("y")).negate(),
        ]);
        let d = dnf(&f, 10);
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0][0], NfLit::Neg(_, _)));
        assert!(matches!(d[0][1], NfLit::Neq(_, _)));
    }

    #[test]
    #[should_panic(expected = "DNF exceeded")]
    fn dnf_cap_enforced() {
        // (a∨b) ∧ (c∨d) ∧ (e∨f) = 8 disjuncts > 4.
        let pair = |x: &str| Fo::Or(vec![e(x, x), e(x, "z")]);
        let f = Fo::And(vec![pair("a"), pair("b"), pair("c")]);
        let _ = dnf(&f, 4);
    }

    #[test]
    #[should_panic(expected = "NNF")]
    fn dnf_rejects_quantifiers() {
        let _ = dnf(&e("x", "y").exists("y"), 10);
    }
}
