//! FO+IFP: inflationary-fixpoint logic, and the Proposition 1 compilers.
//!
//! Gurevich–Shelah's FO+IFP extends first-order logic with inflationary
//! fixpoints of first-order-definable operators. Proposition 1 of the paper
//! identifies Inflationary DATALOG with the **existential fragment**: a
//! query is expressible in Inflationary DATALOG iff it is expressible in
//! FO+IFP using operators definable by *existential* first-order formulas
//! (no universal quantifiers; negation on atoms only — including on the
//! inductively defined relations, which is where non-monotonicity enters).
//!
//! [`IfpSystem`] is a simultaneous inflationary induction: one defining
//! formula per relation, iterated synchronously with accumulation —
//! mirroring the paper's "simultaneous induction in the defining equations".
//! [`IfpSystem::to_datalog`] and [`IfpSystem::from_datalog`] are the two
//! directions of Proposition 1, and the tests check both round trips
//! against the Datalog engine.

use crate::fo::{eval_fo, ExtraRelations, Fo};
use crate::transform::{dnf, is_nnf, nnf, prenex, NfLit, Quant};
use inflog_core::{Database, Relation};
use inflog_syntax::{Atom, Literal, Program, Rule, Term};
use std::collections::HashMap;

/// One inductively defined relation: `name(params) ← φ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfpDef {
    /// Relation name (uppercase, like a predicate).
    pub name: String,
    /// Parameter variables denoting the candidate tuple (the formula's free
    /// variables must be among these).
    pub params: Vec<String>,
    /// Defining formula over the vocabulary ∪ all defined relations.
    pub formula: Fo,
}

/// A simultaneous inflationary induction system.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IfpSystem {
    /// The definitions, iterated synchronously.
    pub defs: Vec<IfpDef>,
}

impl IfpSystem {
    /// Creates a system from `(name, params, formula)` triples.
    pub fn new(defs: Vec<(&str, Vec<&str>, Fo)>) -> Self {
        IfpSystem {
            defs: defs
                .into_iter()
                .map(|(n, ps, f)| IfpDef {
                    name: n.to_owned(),
                    params: ps.into_iter().map(str::to_owned).collect(),
                    formula: f,
                })
                .collect(),
        }
    }

    /// Evaluates the system to its inductive fixpoint on `db`.
    ///
    /// Returns the final relations (by definition name) and the number of
    /// rounds until stabilization.
    pub fn eval(&self, db: &Database) -> (HashMap<String, Relation>, usize) {
        let n = db.universe_size();
        let mut state: ExtraRelations = self
            .defs
            .iter()
            .map(|d| (d.name.clone(), Relation::new(d.params.len())))
            .collect();
        let mut rounds = 0usize;
        loop {
            let mut next = state.clone();
            let mut changed = false;
            for def in &self.defs {
                let k = def.params.len();
                for tuple in inflog_core::tuple::all_tuples(n, k) {
                    if next[&def.name].contains(&tuple) {
                        continue;
                    }
                    let mut env: HashMap<String, inflog_core::Const> = def
                        .params
                        .iter()
                        .zip(tuple.items())
                        .map(|(p, &c)| (p.clone(), c))
                        .collect();
                    // Negations and positives both read the *previous*
                    // round (synchronous iteration, matching Θ^{n+1} =
                    // Θ^n ∪ Θ(Θ^n)).
                    if eval_fo(&def.formula, db, &state, &mut env) {
                        next.get_mut(&def.name)
                            .expect("definition present")
                            .insert(tuple);
                        changed = true;
                    }
                }
            }
            state = next;
            if !changed {
                break;
            }
            rounds += 1;
        }
        (state, rounds)
    }

    /// Whether every defining formula is in the existential fragment
    /// (after NNF: no universal quantifiers, negation on atoms only).
    pub fn is_existential(&self) -> bool {
        self.defs
            .iter()
            .all(|d| is_existential_fo(&nnf(&d.formula)))
    }

    /// Proposition 1, ⇒ direction: compiles an existential system to a
    /// DATALOG¬ program whose inflationary semantics computes the same
    /// relations.
    ///
    /// # Errors
    /// Returns a message if some defining formula is not existential (after
    /// NNF) or if the DNF pass exceeds `max_disjuncts`.
    pub fn to_datalog(&self, max_disjuncts: usize) -> Result<Program, String> {
        let mut rules = Vec::new();
        for def in &self.defs {
            let f = nnf(&def.formula);
            if !is_existential_fo(&f) {
                return Err(format!(
                    "definition of {} is not existential: {}",
                    def.name, def.formula
                ));
            }
            let (prefix, matrix) = prenex(&f);
            debug_assert!(prefix.iter().all(|(q, _)| *q == Quant::Exists));
            if matrix_too_big(&matrix, max_disjuncts) {
                return Err(format!("DNF of {} exceeds {max_disjuncts}", def.name));
            }
            let head_terms: Vec<Term> = def.params.iter().map(|p| Term::Var(p.clone())).collect();
            for conj in dnf(&matrix, max_disjuncts) {
                let body: Vec<Literal> = conj
                    .into_iter()
                    .map(|l| match l {
                        NfLit::Pos(p, ts) => Literal::Pos(Atom::new(p, ts)),
                        NfLit::Neg(p, ts) => Literal::Neg(Atom::new(p, ts)),
                        NfLit::Eq(a, b) => Literal::Eq(a, b),
                        NfLit::Neq(a, b) => Literal::Neq(a, b),
                    })
                    .collect();
                rules.push(Rule::new(
                    Atom::new(def.name.clone(), head_terms.clone()),
                    body,
                ));
            }
        }
        Ok(Program::new(rules))
    }

    /// Proposition 1, ⇐ direction: expresses a DATALOG¬ program as an
    /// existential FO+IFP system (one defining formula per IDB predicate —
    /// the disjunction over its rules of the existentially closed bodies).
    pub fn from_datalog(program: &Program) -> IfpSystem {
        let arities = program.predicate_arities();
        let mut by_head: HashMap<String, Vec<&Rule>> = HashMap::new();
        for r in &program.rules {
            by_head.entry(r.head.predicate.clone()).or_default().push(r);
        }
        let mut defs = Vec::new();
        for name in program.idb_predicates() {
            let k = arities[&name];
            let params: Vec<String> = (0..k).map(|i| format!("p{i}")).collect();
            let mut disjuncts = Vec::new();
            for (ri, rule) in by_head.get(&name).into_iter().flatten().enumerate() {
                // Rename all rule variables to be disjoint from params.
                let rename = |v: &str| -> String { format!("r{ri}_{v}") };
                let rterm = |t: &Term| -> Term {
                    match t {
                        Term::Var(v) => Term::Var(rename(v)),
                        Term::Const(c) => Term::Const(c.clone()),
                    }
                };
                let mut conj: Vec<Fo> = Vec::new();
                // Bind parameters to the head terms.
                for (p, t) in params.iter().zip(&rule.head.terms) {
                    conj.push(Fo::Eq(Term::Var(p.clone()), rterm(t)));
                }
                for lit in &rule.body {
                    conj.push(match lit {
                        Literal::Pos(a) => {
                            Fo::atom(a.predicate.clone(), a.terms.iter().map(&rterm).collect())
                        }
                        Literal::Neg(a) => {
                            Fo::atom(a.predicate.clone(), a.terms.iter().map(&rterm).collect())
                                .negate()
                        }
                        Literal::Eq(a, b) => Fo::Eq(rterm(a), rterm(b)),
                        Literal::Neq(a, b) => Fo::Eq(rterm(a), rterm(b)).negate(),
                    });
                }
                // Existentially close the (renamed) rule variables.
                let mut f = Fo::And(conj);
                for v in rule.variables().iter().rev() {
                    f = f.exists(rename(v));
                }
                disjuncts.push(f);
            }
            defs.push(IfpDef {
                name,
                params,
                formula: Fo::Or(disjuncts),
            });
        }
        IfpSystem { defs }
    }
}

/// Existential-fragment check on an NNF formula.
fn is_existential_fo(f: &Fo) -> bool {
    debug_assert!(is_nnf(f));
    match f {
        Fo::True | Fo::False | Fo::Atom { .. } | Fo::Eq(_, _) | Fo::Not(_) => true,
        Fo::And(gs) | Fo::Or(gs) => gs.iter().all(is_existential_fo),
        Fo::Implies(_, _) => false,
        Fo::Forall(_, _) => false,
        Fo::Exists(_, g) => is_existential_fo(g),
    }
}

/// Cheap pre-check that the DNF will not explode (counts a loose bound).
fn matrix_too_big(f: &Fo, cap: usize) -> bool {
    fn width(f: &Fo) -> usize {
        match f {
            Fo::True | Fo::False | Fo::Atom { .. } | Fo::Eq(_, _) | Fo::Not(_) => 1,
            Fo::Or(gs) => gs.iter().map(width).sum(),
            Fo::And(gs) => gs.iter().map(width).product(),
            Fo::Implies(_, _) | Fo::Forall(_, _) | Fo::Exists(_, _) => 1,
        }
    }
    width(f) > cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_eval::{inflationary, CompiledProgram};
    use inflog_syntax::{parse_program, var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
    const PI1: &str = "T(x) :- E(y, x), !T(y).";

    /// Compares an IFP system evaluation against the Datalog inflationary
    /// engine on the same program.
    fn assert_matches_inflationary(program_src: &str, db: &Database) {
        let program = parse_program(program_src).unwrap();
        let system = IfpSystem::from_datalog(&program);
        let (ifp_result, _) = system.eval(db);
        let (inf, _) = inflationary(&program, db).unwrap();
        let cp = CompiledProgram::compile(&program, db).unwrap();
        for (i, name) in cp.idb_names.iter().enumerate() {
            assert_eq!(
                &ifp_result[name],
                inf.get(i),
                "relation {name} differs on {program_src}"
            );
        }
    }

    #[test]
    fn from_datalog_tc() {
        for g in [DiGraph::path(4), DiGraph::cycle(3), DiGraph::star(4)] {
            assert_matches_inflationary(TC, &g.to_database("E"));
        }
    }

    #[test]
    fn from_datalog_with_negation() {
        for g in [DiGraph::path(4), DiGraph::cycle(4)] {
            assert_matches_inflationary(PI1, &g.to_database("E"));
        }
    }

    #[test]
    fn from_datalog_multi_idb_and_constants() {
        let src = "
            A(x) :- E(x, y), !B(y).
            B(x) :- E(y, x), !A(x).
            C(z, 'v0') :- A(z).
        ";
        for g in [DiGraph::path(3), DiGraph::cycle(3)] {
            assert_matches_inflationary(src, &g.to_database("E"));
        }
    }

    #[test]
    fn from_datalog_random_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let g = DiGraph::random_gnp(4, 0.4, &mut rng);
            assert_matches_inflationary(PI1, &g.to_database("E"));
            assert_matches_inflationary(TC, &g.to_database("E"));
        }
    }

    #[test]
    fn hand_built_system_to_datalog() {
        // Reachability from v0: R(p0) ← p0 = v0 ∨ ∃z (R(z) ∧ E(z, p0)).
        let formula = Fo::Or(vec![
            Fo::Eq(Term::Var("p0".into()), inflog_syntax::cst("v0")),
            Fo::And(vec![
                Fo::atom("R", vec![var("z")]),
                Fo::atom("E", vec![var("z"), var("p0")]),
            ])
            .exists("z"),
        ]);
        let system = IfpSystem::new(vec![("R", vec!["p0"], formula)]);
        assert!(system.is_existential());

        let program = system.to_datalog(100).unwrap();
        for g in [DiGraph::path(4), DiGraph::cycle(4), DiGraph::binary_tree(7)] {
            let mut db = g.to_database("E");
            inflog_eval::ensure_program_constants(&mut db, &program);
            let (ifp_result, _) = system.eval(&db);
            let (inf, _) = inflationary(&program, &db).unwrap();
            let cp = CompiledProgram::compile(&program, &db).unwrap();
            let rid = cp.idb_id("R").unwrap();
            assert_eq!(&ifp_result["R"], inf.get(rid), "graph {g}");
            // Sanity: reachable set from v0.
            let dist = g.distances_from(0);
            for v in 0..g.num_vertices() as u32 {
                let t = inflog_core::Tuple::from_ids(&[v]);
                assert_eq!(
                    ifp_result["R"].contains(&t),
                    dist[v as usize].is_some() || v == 0,
                    "vertex {v} on {g}"
                );
            }
        }
    }

    #[test]
    fn non_existential_rejected() {
        // ∀y E(p0, y) is not existential.
        let formula = Fo::atom("E", vec![var("p0"), var("y")]).forall("y");
        let system = IfpSystem::new(vec![("D", vec!["p0"], formula)]);
        assert!(!system.is_existential());
        assert!(system.to_datalog(100).is_err());
    }

    #[test]
    fn negation_on_atoms_is_existential() {
        let formula = Fo::And(vec![
            Fo::atom("E", vec![var("y"), var("p0")]),
            Fo::atom("T", vec![var("y")]).negate(),
        ])
        .exists("y");
        let system = IfpSystem::new(vec![("T", vec!["p0"], formula)]);
        assert!(system.is_existential());
        // And it is exactly pi_1.
        let program = system.to_datalog(100).unwrap();
        for g in [DiGraph::path(4), DiGraph::cycle(3)] {
            let db = g.to_database("E");
            let (ifp_result, _) = system.eval(&db);
            let (inf, _) = inflationary(&program, &db).unwrap();
            assert_eq!(&ifp_result["T"], inf.get(0), "graph {g}");
        }
    }

    #[test]
    fn roundtrip_program_to_ifp_to_program() {
        // π → system → π′: inflationary semantics must agree.
        for src in [TC, PI1] {
            let program = parse_program(src).unwrap();
            let system = IfpSystem::from_datalog(&program);
            let program2 = system.to_datalog(1000).unwrap();
            for g in [DiGraph::path(3), DiGraph::cycle(4)] {
                let db = g.to_database("E");
                let (a, _) = inflationary(&program, &db).unwrap();
                let cp1 = CompiledProgram::compile(&program, &db).unwrap();
                let (b, _) = inflationary(&program2, &db).unwrap();
                let cp2 = CompiledProgram::compile(&program2, &db).unwrap();
                for name in &cp1.idb_names {
                    let i = cp1.idb_id(name).unwrap();
                    let j = cp2.idb_id(name).unwrap();
                    assert_eq!(a.get(i), b.get(j), "{src} / {name} on {g}");
                }
            }
        }
    }

    #[test]
    fn iteration_rounds_match_engine() {
        // Same synchronous semantics ⇒ same round count.
        let program = parse_program(TC).unwrap();
        let db = DiGraph::path(5).to_database("E");
        let system = IfpSystem::from_datalog(&program);
        let (_, ifp_rounds) = system.eval(&db);
        let (_, trace) = inflationary(&program, &db).unwrap();
        assert_eq!(ifp_rounds, trace.rounds);
    }
}
