//! # inflog-logic
//!
//! The logic substrate behind Theorems 1–3 and Proposition 1 of *"Why Not
//! Negation by Fixpoint?"*:
//!
//! * [`fo`] — first-order formulas over a relational vocabulary, with model
//!   checking on finite databases (quantifiers range over the universe);
//! * [`transform`] — negation normal form, prenexing (capture-free), and
//!   DNF of quantifier-free matrices;
//! * [`eso`] — existential second-order formulas `∃S̄ φ` (Fagin's normal
//!   form for NP), brute-force checking, and the paper's **Skolem normal
//!   form** transformation to `∃S̄ ∀x̄ ∃ȳ (θ₁ ∨ ... ∨ θ_k)`, which
//!   eliminates ∀∃ alternations by encoding Skolem functions as witness
//!   *relations*:
//!   `(∀u)(∃v)χ ⟺ (∃X)[(∀u∀v)(X(u,v) → χ) ∧ (∀u)(∃v)X(u,v)]`;
//! * [`to_datalog`] — the **Theorem 1 compiler**: from a Skolem-normal-form
//!   ∃SO sentence to a DATALOG¬ program π_C such that a database satisfies
//!   the sentence iff `(π_C, D)` has a fixpoint (NP ≡ fixpoint existence);
//! * [`ifp`] — FO+IFP: simultaneous inflationary-fixpoint systems, their
//!   evaluation, and the **Proposition 1 compilers** between Inflationary
//!   DATALOG and the existential fragment of FO+IFP.
//!
//! Throughout, universes are assumed **nonempty** (the standard convention
//! for Fagin-style arguments; quantifier equivalences like
//! `ψ ∨ ∃x φ ≡ ∃x (ψ ∨ φ)` need it).

pub mod eso;
pub mod fo;
pub mod ifp;
pub mod to_datalog;
pub mod transform;

pub use eso::{Eso, SkolemNf};
pub use fo::Fo;
pub use ifp::IfpSystem;
pub use to_datalog::{eso_to_datalog, DatalogReduction};
