//! The Theorem 1 compiler: ∃SO (Skolem normal form) → DATALOG¬, such that
//! membership in the NP collection coincides with **fixpoint existence**.
//!
//! Given `∃S̄ ∀x̄ ∃ȳ (θ₁ ∨ ... ∨ θ_k)` over vocabulary σ, the paper's program
//! π_C is:
//!
//! ```text
//! Sj(x̄j) <- Sj(x̄j)          (1 ≤ j ≤ m, making the S̄ non-database relations)
//! Q(x̄)   <- θᵢ(x̄, ȳ)        (1 ≤ i ≤ k)
//! T(z)   <- !Q(ū), !T(w)     (the toggle)
//! ```
//!
//! In any fixpoint the identity rules leave S̄ free (the "guess"); the Q
//! rules force `Q = {x̄ : ∃ȳ ⋁θᵢ}`; and the toggle admits a fixpoint
//! (`T = ∅`) exactly when `Q = A^{|x̄|}`, i.e. when `∀x̄∃ȳ ⋁θᵢ` holds. Hence
//! `D ⊨ ∃S̄∀x̄∃ȳ⋁θᵢ  ⟺  (π_C, D)` has a fixpoint. (Universe assumed
//! nonempty, as in the paper.)

use crate::eso::SkolemNf;
use crate::transform::NfLit;
use inflog_syntax::{Atom, Literal, Program, Rule, Term};

/// The compiled reduction: program plus the reserved predicate names.
#[derive(Debug, Clone)]
pub struct DatalogReduction {
    /// The DATALOG¬ program π_C.
    pub program: Program,
    /// The "Q" predicate (arity = number of universal variables).
    pub q_pred: String,
    /// The "T" toggle predicate (arity 1).
    pub t_pred: String,
    /// The second-order guess predicates (identity rules).
    pub so_preds: Vec<String>,
}

/// Compiles a Skolem-normal-form ∃SO sentence into the Theorem 1 program.
///
/// Fresh predicate names are prefixed `Q`/`T` and suffixed with digits when
/// colliding with existing predicates.
///
/// # Panics
/// Panics if a second-order variable name does not start with an uppercase
/// letter (required to be a legal head predicate).
pub fn eso_to_datalog(nf: &SkolemNf) -> DatalogReduction {
    let mut used: std::collections::BTreeSet<String> = nf
        .disjuncts
        .iter()
        .flatten()
        .filter_map(|l| match l {
            NfLit::Pos(p, _) | NfLit::Neg(p, _) => Some(p.clone()),
            _ => None,
        })
        .collect();
    for (name, _) in &nf.so_vars {
        assert!(
            name.chars().next().is_some_and(char::is_uppercase),
            "second-order variable `{name}` must start uppercase"
        );
        used.insert(name.clone());
    }
    let fresh = |base: &str, used: &std::collections::BTreeSet<String>| -> String {
        if !used.contains(base) {
            return base.to_owned();
        }
        (0..)
            .map(|i| format!("{base}{i}"))
            .find(|n| !used.contains(n))
            .expect("unbounded name space")
    };
    let q_pred = fresh("Q", &used);
    used.insert(q_pred.clone());
    let t_pred = fresh("T", &used);
    used.insert(t_pred.clone());

    let mut rules = Vec::new();

    // Identity rules: make each S_j a non-database relation.
    for (name, arity) in &nf.so_vars {
        let terms: Vec<Term> = (0..*arity).map(|i| Term::Var(format!("x{i}"))).collect();
        rules.push(Rule::new(
            Atom::new(name.clone(), terms.clone()),
            vec![Literal::Pos(Atom::new(name.clone(), terms))],
        ));
    }

    // Q rules: one per disjunct. Variables keep their prenex names; the
    // engine Domain-grounds whatever the body leaves unbound (that is the
    // ∃ȳ and any x̄ not mentioned).
    let head_terms: Vec<Term> = nf.foralls.iter().map(|v| Term::Var(v.clone())).collect();
    for conj in &nf.disjuncts {
        let body: Vec<Literal> = conj
            .iter()
            .map(|l| match l {
                NfLit::Pos(p, ts) => Literal::Pos(Atom::new(p.clone(), ts.clone())),
                NfLit::Neg(p, ts) => Literal::Neg(Atom::new(p.clone(), ts.clone())),
                NfLit::Eq(a, b) => Literal::Eq(a.clone(), b.clone()),
                NfLit::Neq(a, b) => Literal::Neq(a.clone(), b.clone()),
            })
            .collect();
        rules.push(Rule::new(
            Atom::new(q_pred.clone(), head_terms.clone()),
            body,
        ));
    }

    // The toggle: T(z) <- !Q(ū), !T(w).
    let q_args: Vec<Term> = (0..nf.foralls.len())
        .map(|i| Term::Var(format!("u{i}")))
        .collect();
    rules.push(Rule::new(
        Atom::new(t_pred.clone(), vec![Term::Var("z".into())]),
        vec![
            Literal::Neg(Atom::new(q_pred.clone(), q_args)),
            Literal::Neg(Atom::new(t_pred.clone(), vec![Term::Var("w".into())])),
        ],
    ));

    DatalogReduction {
        program: Program::new(rules),
        q_pred,
        t_pred,
        so_preds: nf.so_vars.iter().map(|(n, _)| n.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eso::Eso;
    use crate::fo::Fo;
    use inflog_core::graphs::DiGraph;
    use inflog_core::Database;
    use inflog_fixpoint::FixpointAnalyzer;
    use inflog_syntax::var;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn e(x: &str, y: &str) -> Fo {
        Fo::atom("E", vec![var(x), var(y)])
    }

    fn s1(x: &str) -> Fo {
        Fo::atom("S", vec![var(x)])
    }

    fn compile(eso: &Eso) -> DatalogReduction {
        eso_to_datalog(&crate::eso::SkolemNf::of(eso, 10_000))
    }

    fn fixpoint_exists(red: &DatalogReduction, db: &Database) -> bool {
        FixpointAnalyzer::new(&red.program, db)
            .unwrap()
            .fixpoint_exists()
    }

    fn symmetric_cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge_undirected(i as u32, ((i + 1) % n) as u32);
        }
        g
    }

    #[test]
    fn two_colorability_reduction() {
        // ∃S: every E-edge crosses the S-cut.
        let matrix = Fo::Or(vec![
            e("x", "y").negate(),
            Fo::And(vec![s1("x"), s1("y").negate()]),
            Fo::And(vec![s1("x").negate(), s1("y")]),
        ])
        .forall("y")
        .forall("x");
        let eso = Eso::new(vec![("S", 1)], matrix);
        let red = compile(&eso);

        // Structure: identity rule + 3 Q-rules + toggle.
        assert_eq!(red.program.len(), 5);
        assert!(red.program.idb_predicates().contains(&red.q_pred));

        for (g, expect) in [
            (symmetric_cycle(4), true),
            (symmetric_cycle(5), false),
            (symmetric_cycle(6), true),
            (DiGraph::path(4), true), // directed path: 2-colorable
        ] {
            let db = g.to_database("E");
            assert_eq!(eso.eval_brute(&db), expect, "brute on {g}");
            assert_eq!(fixpoint_exists(&red, &db), expect, "fixpoint on {g}");
        }
    }

    #[test]
    fn alternation_reduction() {
        // ∃S ∀x∃y (E(x,y) ∧ S(y)).
        let matrix = Fo::And(vec![e("x", "y"), s1("y")]).exists("y").forall("x");
        let eso = Eso::new(vec![("S", 1)], matrix);
        let red = compile(&eso);
        for (g, expect) in [
            (DiGraph::cycle(4), true),
            (DiGraph::path(3), false), // sink vertex has no out-edge
            (DiGraph::complete(3), true),
        ] {
            let db = g.to_database("E");
            assert_eq!(eso.eval_brute(&db), expect, "brute on {g}");
            assert_eq!(fixpoint_exists(&red, &db), expect, "fixpoint on {g}");
        }
    }

    #[test]
    fn genuine_witness_reduction() {
        // ∃u∀x∃y (E(u,x) → E(x,y)): needs a witness relation (∃ before ∀).
        let matrix = Fo::Implies(Box::new(e("u", "x")), Box::new(e("x", "y")))
            .exists("y")
            .forall("x")
            .exists("u");
        let eso = Eso::new(vec![], matrix);
        let red = compile(&eso);
        assert!(
            red.so_preds.iter().any(|p| p.starts_with('W')),
            "witness relations should appear as guess predicates"
        );
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..6 {
            let g = DiGraph::random_gnp(3, 0.4, &mut rng);
            let db = g.to_database("E");
            assert_eq!(eso.eval_brute(&db), fixpoint_exists(&red, &db), "graph {g}");
        }
    }

    #[test]
    fn random_formulas_reduction_agrees_with_brute_force() {
        // The Theorem 1 statement, tested end to end on random sentences.
        let mut rng = StdRng::seed_from_u64(61);
        for trial in 0..10 {
            let sentence = random_sentence(&mut rng);
            let eso = Eso::new(vec![("S", 1)], sentence);
            let red = compile(&eso);
            for n in [2usize, 3] {
                let g = DiGraph::random_gnp(n, 0.5, &mut rng);
                let db = g.to_database("E");
                let brute = eso.eval_brute(&db);
                let fix = fixpoint_exists(&red, &db);
                assert_eq!(
                    brute, fix,
                    "trial {trial}, formula {}, graph {g}",
                    eso.matrix
                );
            }
        }
    }

    fn random_sentence(rng: &mut StdRng) -> Fo {
        let vars = ["v0", "v1", "v2"];
        fn atom(rng: &mut StdRng, vars: &[&str]) -> Fo {
            let x = vars[rng.gen_range(0..vars.len())];
            let y = vars[rng.gen_range(0..vars.len())];
            if rng.gen_bool(0.5) {
                Fo::atom("E", vec![var(x), var(y)])
            } else {
                Fo::atom("S", vec![var(x)])
            }
        }
        fn go(rng: &mut StdRng, depth: usize, vars: &[&str]) -> Fo {
            if depth == 0 {
                let a = atom(rng, vars);
                return if rng.gen_bool(0.4) { a.negate() } else { a };
            }
            match rng.gen_range(0..5) {
                0 => Fo::And(vec![go(rng, depth - 1, vars), go(rng, depth - 1, vars)]),
                1 => Fo::Or(vec![go(rng, depth - 1, vars), go(rng, depth - 1, vars)]),
                2 => go(rng, depth - 1, vars).negate(),
                3 => go(rng, depth - 1, vars).forall(vars[rng.gen_range(0..vars.len())]),
                _ => go(rng, depth - 1, vars).exists(vars[rng.gen_range(0..vars.len())]),
            }
        }
        let mut f = go(rng, 2, &vars);
        for v in vars {
            f = if rng.gen_bool(0.5) {
                f.forall(v)
            } else {
                f.exists(v)
            };
        }
        f
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        // A formula already using predicates Q and T.
        let matrix = Fo::Or(vec![
            Fo::atom("Q", vec![var("x")]).negate(),
            Fo::atom("T", vec![var("x")]),
        ])
        .forall("x");
        let eso = Eso::new(vec![("Q", 1), ("T", 1)], matrix);
        let red = compile(&eso);
        assert_ne!(red.q_pred, "Q");
        assert_ne!(red.t_pred, "T");
        let report = inflog_syntax::validate(&red.program);
        assert!(report.is_ok(), "errors: {:?}", report.errors);
    }

    #[test]
    fn trivially_true_and_false_sentences() {
        // ∀x (x = x) → compiled program always has a fixpoint.
        let taut = Eso::new(vec![], Fo::Eq(var("x"), var("x")).forall("x"));
        let red_t = compile(&taut);
        // ∀x ¬(x = x) → never (on nonempty universes).
        let contra = Eso::new(vec![], Fo::Eq(var("x"), var("x")).negate().forall("x"));
        let red_f = compile(&contra);
        for g in [DiGraph::path(2), DiGraph::cycle(3)] {
            let db = g.to_database("E");
            assert!(fixpoint_exists(&red_t, &db));
            assert!(!fixpoint_exists(&red_f, &db));
        }
    }
}
