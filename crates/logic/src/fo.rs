//! First-order formulas and their evaluation on finite databases.

use inflog_core::{Const, Database, Relation, Tuple};
use inflog_syntax::Term;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A first-order formula over a relational vocabulary with equality.
///
/// Terms reuse the syntax crate's [`Term`] (named variables and constants).
/// Relation symbols are resolved at evaluation time: first against an
/// "extra" interpretation (for second-order variables / IDB relations), then
/// against the database (absent relations are empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fo {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// `pred(terms...)`.
    Atom {
        /// Relation symbol.
        pred: String,
        /// Argument terms.
        terms: Vec<Term>,
    },
    /// `t1 = t2`.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Fo>),
    /// N-ary conjunction (empty = true).
    And(Vec<Fo>),
    /// N-ary disjunction (empty = false).
    Or(Vec<Fo>),
    /// Implication.
    Implies(Box<Fo>, Box<Fo>),
    /// Universal quantification.
    Forall(String, Box<Fo>),
    /// Existential quantification.
    Exists(String, Box<Fo>),
}

impl Fo {
    /// Atom constructor.
    pub fn atom(pred: impl Into<String>, terms: Vec<Term>) -> Fo {
        Fo::Atom {
            pred: pred.into(),
            terms,
        }
    }

    /// Negation (with double-negation collapse).
    #[must_use]
    pub fn negate(self) -> Fo {
        match self {
            Fo::Not(inner) => *inner,
            Fo::True => Fo::False,
            Fo::False => Fo::True,
            other => Fo::Not(Box::new(other)),
        }
    }

    /// Conjunction helper.
    pub fn and(parts: Vec<Fo>) -> Fo {
        Fo::And(parts)
    }

    /// Disjunction helper.
    pub fn or(parts: Vec<Fo>) -> Fo {
        Fo::Or(parts)
    }

    /// `∀v. self`.
    #[must_use]
    pub fn forall(self, v: impl Into<String>) -> Fo {
        Fo::Forall(v.into(), Box::new(self))
    }

    /// `∃v. self`.
    #[must_use]
    pub fn exists(self, v: impl Into<String>) -> Fo {
        Fo::Exists(v.into(), Box::new(self))
    }

    /// Free first-order variables.
    pub fn free_vars(&self) -> BTreeSet<String> {
        fn go(f: &Fo, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            match f {
                Fo::True | Fo::False => {}
                Fo::Atom { terms, .. } => {
                    for t in terms {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Fo::Eq(a, b) => {
                    for t in [a, b] {
                        if let Term::Var(v) = t {
                            if !bound.contains(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
                Fo::Not(g) => go(g, bound, out),
                Fo::And(gs) | Fo::Or(gs) => {
                    for g in gs {
                        go(g, bound, out);
                    }
                }
                Fo::Implies(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Fo::Forall(v, g) | Fo::Exists(v, g) => {
                    bound.push(v.clone());
                    go(g, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// All relation symbols mentioned.
    pub fn predicates(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Fo::Atom { pred, .. } = f {
                out.insert(pred.clone());
            }
        });
        out
    }

    fn visit(&self, f: &mut impl FnMut(&Fo)) {
        f(self);
        match self {
            Fo::True | Fo::False | Fo::Atom { .. } | Fo::Eq(_, _) => {}
            Fo::Not(g) => g.visit(f),
            Fo::And(gs) | Fo::Or(gs) => gs.iter().for_each(|g| g.visit(f)),
            Fo::Implies(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Fo::Forall(_, g) | Fo::Exists(_, g) => g.visit(f),
        }
    }
}

impl fmt::Display for Fo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fo::True => write!(f, "true"),
            Fo::False => write!(f, "false"),
            Fo::Atom { pred, terms } => {
                write!(f, "{pred}(")?;
                for (i, t) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Fo::Eq(a, b) => write!(f, "{a} = {b}"),
            Fo::Not(g) => write!(f, "!({g})"),
            Fo::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Fo::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Fo::Implies(a, b) => write!(f, "({a} -> {b})"),
            Fo::Forall(v, g) => write!(f, "forall {v}. {g}"),
            Fo::Exists(v, g) => write!(f, "exists {v}. {g}"),
        }
    }
}

/// An interpretation for extra relation symbols (second-order variables,
/// IDB relations) layered over a database.
pub type ExtraRelations = HashMap<String, Relation>;

/// Evaluates a sentence (or formula under `env`) on `db` with `extra`
/// interpreting relation symbols not stored in the database.
///
/// Quantifiers range over the database universe. Relation lookup order:
/// `extra`, then the database, then empty.
pub fn eval_fo(
    f: &Fo,
    db: &Database,
    extra: &ExtraRelations,
    env: &mut HashMap<String, Const>,
) -> bool {
    match f {
        Fo::True => true,
        Fo::False => false,
        Fo::Atom { pred, terms } => {
            let tuple: Option<Vec<Const>> = terms.iter().map(|t| term_value(t, db, env)).collect();
            let Some(items) = tuple else { return false };
            let t = Tuple::from(items);
            if let Some(r) = extra.get(pred) {
                r.contains(&t)
            } else if let Some(r) = db.relation(pred) {
                r.contains(&t)
            } else {
                false
            }
        }
        Fo::Eq(a, b) => match (term_value(a, db, env), term_value(b, db, env)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
        Fo::Not(g) => !eval_fo(g, db, extra, env),
        Fo::And(gs) => gs.iter().all(|g| eval_fo(g, db, extra, env)),
        Fo::Or(gs) => gs.iter().any(|g| eval_fo(g, db, extra, env)),
        Fo::Implies(a, b) => !eval_fo(a, db, extra, env) || eval_fo(b, db, extra, env),
        Fo::Forall(v, g) => {
            let saved = env.get(v).copied();
            let ok = db.universe().iter().all(|c| {
                env.insert(v.clone(), c);
                eval_fo(g, db, extra, env)
            });
            restore(env, v, saved);
            ok
        }
        Fo::Exists(v, g) => {
            let saved = env.get(v).copied();
            let ok = db.universe().iter().any(|c| {
                env.insert(v.clone(), c);
                eval_fo(g, db, extra, env)
            });
            restore(env, v, saved);
            ok
        }
    }
}

/// Evaluates a **sentence** (no free variables) on `db` + `extra`.
pub fn eval_sentence(f: &Fo, db: &Database, extra: &ExtraRelations) -> bool {
    debug_assert!(
        f.free_vars().is_empty(),
        "eval_sentence requires a sentence; free: {:?}",
        f.free_vars()
    );
    eval_fo(f, db, extra, &mut HashMap::new())
}

fn term_value(t: &Term, db: &Database, env: &HashMap<String, Const>) -> Option<Const> {
    match t {
        Term::Var(v) => env.get(v).copied(),
        Term::Const(c) => db.universe().lookup(c),
    }
}

fn restore(env: &mut HashMap<String, Const>, v: &str, saved: Option<Const>) {
    match saved {
        Some(c) => {
            env.insert(v.to_owned(), c);
        }
        None => {
            env.remove(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::{cst, var};

    fn v(s: &str) -> Term {
        var(s)
    }

    #[test]
    fn atoms_and_quantifiers_on_graph() {
        // ∀x ∃y E(x, y): every vertex has an out-edge. True on a cycle,
        // false on a path.
        let f = Fo::atom("E", vec![v("x"), v("y")]).exists("y").forall("x");
        let cycle = DiGraph::cycle(4).to_database("E");
        let path = DiGraph::path(4).to_database("E");
        assert!(eval_sentence(&f, &cycle, &ExtraRelations::new()));
        assert!(!eval_sentence(&f, &path, &ExtraRelations::new()));
    }

    #[test]
    fn equality_and_constants() {
        let db = DiGraph::path(3).to_database("E");
        // ∃x (x = v1): true.
        let f = Fo::Eq(v("x"), cst("v1")).exists("x");
        assert!(eval_sentence(&f, &db, &ExtraRelations::new()));
        // Unknown constant: equality is false, not an error.
        let g = Fo::Eq(v("x"), cst("nope")).exists("x");
        assert!(!eval_sentence(&g, &db, &ExtraRelations::new()));
    }

    #[test]
    fn implication_and_negation() {
        // ∀x∀y (E(x,y) → ¬E(y,x)): antisymmetry. True on a path,
        // false on C_2.
        let f = Fo::Implies(
            Box::new(Fo::atom("E", vec![v("x"), v("y")])),
            Box::new(Fo::atom("E", vec![v("y"), v("x")]).negate()),
        )
        .forall("y")
        .forall("x");
        assert!(eval_sentence(
            &f,
            &DiGraph::path(3).to_database("E"),
            &ExtraRelations::new()
        ));
        assert!(!eval_sentence(
            &f,
            &DiGraph::cycle(2).to_database("E"),
            &ExtraRelations::new()
        ));
    }

    #[test]
    fn extra_relations_shadow_database() {
        let db = DiGraph::path(2).to_database("E");
        let f = Fo::atom("E", vec![v("x"), v("y")]).exists("y").exists("x");
        let mut extra = ExtraRelations::new();
        extra.insert("E".into(), Relation::new(2)); // shadow with empty
        assert!(!eval_sentence(&f, &db, &extra));
        assert!(eval_sentence(&f, &db, &ExtraRelations::new()));
    }

    #[test]
    fn missing_relation_is_empty() {
        let db = DiGraph::path(2).to_database("E");
        let f = Fo::atom("Z", vec![v("x")]).exists("x");
        assert!(!eval_sentence(&f, &db, &ExtraRelations::new()));
    }

    #[test]
    fn free_vars_and_predicates() {
        let f = Fo::And(vec![
            Fo::atom("E", vec![v("x"), v("y")]).exists("y"),
            Fo::atom("V", vec![v("z")]),
        ]);
        assert_eq!(
            f.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["x", "z"]
        );
        assert_eq!(
            f.predicates().into_iter().collect::<Vec<_>>(),
            vec!["E", "V"]
        );
    }

    #[test]
    fn empty_connectives() {
        let db = DiGraph::path(1).to_database("E");
        assert!(eval_sentence(&Fo::And(vec![]), &db, &ExtraRelations::new()));
        assert!(!eval_sentence(&Fo::Or(vec![]), &db, &ExtraRelations::new()));
    }

    #[test]
    fn quantifier_shadowing_restores_env() {
        // ∃x (E(x,x) ∨ ∀x ¬E(x,x)) — inner x shadows outer.
        let mut g = DiGraph::new(2);
        g.add_edge(0, 0);
        let db = g.to_database("E");
        let inner = Fo::atom("E", vec![v("x"), v("x")]).negate().forall("x");
        let f = Fo::Or(vec![Fo::atom("E", vec![v("x"), v("x")]), inner]).exists("x");
        assert!(eval_sentence(&f, &db, &ExtraRelations::new()));
    }

    #[test]
    fn display_roundtrips_visually() {
        let f = Fo::atom("E", vec![v("x"), v("y")]).exists("y").forall("x");
        assert_eq!(f.to_string(), "forall x. exists y. E(x, y)");
    }
}
