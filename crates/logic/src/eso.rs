//! Existential second-order formulas and the paper's Skolem normal form.
//!
//! By Fagin's theorem, a collection of finite databases is in NP iff it is
//! definable by an ∃SO sentence `∃S̄ φ(S̄)`. The proof of Theorem 1 starts by
//! bringing any such sentence to **Skolem normal form**
//!
//! ```text
//! ∃S̄ (∀x̄)(∃ȳ)(θ₁(x̄,ȳ) ∨ ... ∨ θ_k(x̄,ȳ))
//! ```
//!
//! where the θᵢ are conjunctions of literals. The ∀∃-alternation is
//! eliminated without function symbols by encoding Skolem functions as their
//! graphs — fresh witness *relations*:
//!
//! ```text
//! (∀ū)(∃v̄)χ(ū,v̄)  ⟺  (∃X)[(∀ū∀v̄)(X(ū,v̄) → χ(ū,v̄)) ∧ (∀ū)(∃v̄)X(ū,v̄)]
//! ```
//!
//! applied repeatedly (universe assumed nonempty), followed by prenexing and
//! a DNF pass on the matrix. [`SkolemNf::of`] implements exactly this;
//! property tests check truth-preservation against brute-force evaluation.

use crate::fo::{eval_sentence, ExtraRelations, Fo};
use crate::transform::{dnf, nnf, prenex, requantify, NfLit, Quant};
use inflog_core::{Database, Relation};
use inflog_syntax::Term;

/// An existential second-order sentence `∃S₁...∃S_m φ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eso {
    /// Second-order variables with arities.
    pub so_vars: Vec<(String, usize)>,
    /// First-order part (a sentence over the vocabulary ∪ `so_vars`).
    pub matrix: Fo,
}

impl Eso {
    /// Creates an ∃SO sentence.
    pub fn new(so_vars: Vec<(&str, usize)>, matrix: Fo) -> Self {
        Eso {
            so_vars: so_vars
                .into_iter()
                .map(|(n, k)| (n.to_owned(), k))
                .collect(),
            matrix,
        }
    }

    /// Brute-force evaluation: tries every assignment of relations to the
    /// second-order variables (`2^(|A|^k)` each).
    ///
    /// # Panics
    /// Panics if any single second-order variable has more than 20 potential
    /// tuples (the search is exponential; this is a test/ground-truth tool).
    pub fn eval_brute(&self, db: &Database) -> bool {
        self.find_witness(db).is_some()
    }

    /// Counts the witnessing assignments of relations to the second-order
    /// variables (brute force).
    ///
    /// This is the quantity Theorem 2 relates to fixpoint counts: the
    /// compiled Theorem 1 program has exactly one fixpoint per witness
    /// (the `Q`/`T` components are forced).
    ///
    /// # Panics
    /// Same limits as [`eval_brute`](Self::eval_brute).
    pub fn count_witnesses_brute(&self, db: &Database) -> u64 {
        let n = db.universe_size();
        fn rec(
            so: &[(String, usize)],
            matrix: &Fo,
            db: &Database,
            extra: &mut ExtraRelations,
            n: usize,
        ) -> u64 {
            match so.split_first() {
                None => u64::from(eval_sentence(matrix, db, extra)),
                Some(((name, arity), rest)) => {
                    let tuples: Vec<_> = inflog_core::tuple::all_tuples(n, *arity).collect();
                    assert!(
                        tuples.len() <= 20,
                        "brute-force ESO limited to 20 tuples per relation"
                    );
                    let mut count = 0;
                    for mask in 0u64..(1u64 << tuples.len()) {
                        let mut r = Relation::new(*arity);
                        for (i, t) in tuples.iter().enumerate() {
                            if mask >> i & 1 == 1 {
                                r.insert(t.clone());
                            }
                        }
                        extra.insert(name.clone(), r);
                        count += rec(rest, matrix, db, extra, n);
                    }
                    extra.remove(name);
                    count
                }
            }
        }
        let mut extra = ExtraRelations::new();
        rec(&self.so_vars, &self.matrix, db, &mut extra, n)
    }

    /// Like [`eval_brute`](Self::eval_brute) but returns the witnessing
    /// relations.
    pub fn find_witness(&self, db: &Database) -> Option<ExtraRelations> {
        let n = db.universe_size();
        fn rec(
            so: &[(String, usize)],
            matrix: &Fo,
            db: &Database,
            extra: &mut ExtraRelations,
            n: usize,
        ) -> bool {
            match so.split_first() {
                None => eval_sentence(matrix, db, extra),
                Some(((name, arity), rest)) => {
                    let tuples: Vec<_> = inflog_core::tuple::all_tuples(n, *arity).collect();
                    assert!(
                        tuples.len() <= 20,
                        "brute-force ESO limited to 20 tuples per relation"
                    );
                    for mask in 0u64..(1u64 << tuples.len()) {
                        let mut r = Relation::new(*arity);
                        for (i, t) in tuples.iter().enumerate() {
                            if mask >> i & 1 == 1 {
                                r.insert(t.clone());
                            }
                        }
                        extra.insert(name.clone(), r);
                        if rec(rest, matrix, db, extra, n) {
                            return true;
                        }
                    }
                    extra.remove(name);
                    false
                }
            }
        }
        let mut extra = ExtraRelations::new();
        if rec(&self.so_vars, &self.matrix, db, &mut extra, n) {
            Some(extra)
        } else {
            None
        }
    }
}

/// An ∃SO sentence in Skolem normal form:
/// `∃S̄ ∀x̄ ∃ȳ (θ₁ ∨ ... ∨ θ_k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkolemNf {
    /// Second-order variables: the originals plus witness relations
    /// `W0, W1, ...` introduced by the alternation elimination.
    pub so_vars: Vec<(String, usize)>,
    /// Universally quantified first-order variables `x̄`.
    pub foralls: Vec<String>,
    /// Existentially quantified first-order variables `ȳ`.
    pub exists: Vec<String>,
    /// The matrix in DNF: each disjunct a conjunction of literals over the
    /// vocabulary ∪ `so_vars`.
    pub disjuncts: Vec<Vec<NfLit>>,
}

impl SkolemNf {
    /// Computes the Skolem normal form of an ∃SO sentence.
    ///
    /// `max_disjuncts` caps the DNF blowup.
    ///
    /// # Panics
    /// Panics if the witness names `W<i>` collide with existing predicate
    /// names, or if the DNF cap is exceeded.
    pub fn of(eso: &Eso, max_disjuncts: usize) -> SkolemNf {
        let preds = eso.matrix.predicates();
        let mut wit = 0usize;
        let fresh_witness = |wit: &mut usize| loop {
            let name = format!("W{}", *wit);
            *wit += 1;
            if !preds.contains(&name) && !eso.so_vars.iter().any(|(n, _)| *n == name) {
                return name;
            }
        };

        let n = nnf(&eso.matrix);
        let (prefix, matrix) = prenex(&n);
        let mut varc = 0usize;
        let (new_so, foralls, exists, matrix) =
            to_forall_exists(&prefix, matrix, &mut wit, &mut varc, &fresh_witness);

        let mut so_vars = eso.so_vars.clone();
        so_vars.extend(new_so);

        let disjuncts = dnf(&matrix, max_disjuncts);
        SkolemNf {
            so_vars,
            foralls,
            exists,
            disjuncts,
        }
    }

    /// Rebuilds an [`Eso`] sentence (for evaluation cross-checks).
    pub fn to_eso(&self) -> Eso {
        let matrix_fo = Fo::Or(
            self.disjuncts
                .iter()
                .map(|conj| {
                    Fo::And(
                        conj.iter()
                            .map(|lit| match lit {
                                NfLit::Pos(p, ts) => Fo::atom(p.clone(), ts.clone()),
                                NfLit::Neg(p, ts) => Fo::atom(p.clone(), ts.clone()).negate(),
                                NfLit::Eq(a, b) => Fo::Eq(a.clone(), b.clone()),
                                NfLit::Neq(a, b) => Fo::Eq(a.clone(), b.clone()).negate(),
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let prefix: Vec<(Quant, String)> = self
            .foralls
            .iter()
            .map(|v| (Quant::Forall, v.clone()))
            .chain(self.exists.iter().map(|v| (Quant::Exists, v.clone())))
            .collect();
        Eso {
            so_vars: self.so_vars.clone(),
            matrix: requantify(&prefix, matrix_fo),
        }
    }
}

/// Result of one alternation-elimination step: witness relations introduced,
/// universal prefix, existential prefix, and the rewritten matrix.
type ForallExistsForm = (Vec<(String, usize)>, Vec<String>, Vec<String>, Fo);

/// Eliminates ∀∃ alternation: rewrites `prefix . matrix` into an equivalent
/// (over nonempty universes, under ∃SO closure) `∀x̄∃ȳ matrix'`, returning
/// the witness relations introduced.
fn to_forall_exists(
    prefix: &[(Quant, String)],
    matrix: Fo,
    wit: &mut usize,
    varc: &mut usize,
    fresh_witness: &impl Fn(&mut usize) -> String,
) -> ForallExistsForm {
    // Split: leading ∀-block, then ∃-block, then the rest.
    let mut i = 0;
    while i < prefix.len() && prefix[i].0 == Quant::Forall {
        i += 1;
    }
    let mut j = i;
    while j < prefix.len() && prefix[j].0 == Quant::Exists {
        j += 1;
    }
    let u: Vec<String> = prefix[..i].iter().map(|(_, v)| v.clone()).collect();
    let v: Vec<String> = prefix[i..j].iter().map(|(_, w)| w.clone()).collect();
    if j == prefix.len() {
        // Already ∀*∃*.
        return (Vec::new(), u, v, matrix);
    }
    let rest = &prefix[j..];

    // Witness relation X(ū, v̄) for the Skolem graph of v̄ given ū.
    let x_name = fresh_witness(wit);
    let arity = u.len() + v.len();
    let uv_terms: Vec<Term> = u.iter().chain(&v).map(|w| Term::Var(w.clone())).collect();

    // Conjunct 1: ∀ū∀v̄ [rest](¬X(ū,v̄) ∨ matrix), recursively normalized.
    let not_x = Fo::atom(x_name.clone(), uv_terms).negate();
    let (so1, f1, e1, m1) =
        to_forall_exists(rest, Fo::Or(vec![not_x, matrix]), wit, varc, fresh_witness);

    // Conjunct 2: ∀ū₂ ∃v̄₂ X(ū₂, v̄₂) with fresh first-order names (the two
    // conjuncts' prefixes must not share variables when merged).
    let fresh_var = |varc: &mut usize| {
        let name = format!("s{}", *varc);
        *varc += 1;
        name
    };
    let u2: Vec<String> = u.iter().map(|_| fresh_var(varc)).collect();
    let v2: Vec<String> = v.iter().map(|_| fresh_var(varc)).collect();
    let x2_terms: Vec<Term> = u2.iter().chain(&v2).map(|w| Term::Var(w.clone())).collect();
    let m2 = Fo::atom(x_name.clone(), x2_terms);

    // Merge: ∀ā∃b̄ α ∧ ∀c̄∃d̄ β ≡ ∀ā c̄ ∃b̄ d̄ (α ∧ β) on nonempty universes.
    let mut so = vec![(x_name, arity)];
    so.extend(so1);
    let mut foralls = u;
    foralls.extend(v);
    foralls.extend(f1);
    foralls.extend(u2);
    let mut exists = e1;
    exists.extend(v2);
    (so, foralls, exists, Fo::And(vec![m1, m2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_core::graphs::DiGraph;
    use inflog_syntax::var;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn e(x: &str, y: &str) -> Fo {
        Fo::atom("E", vec![var(x), var(y)])
    }

    fn s1(x: &str) -> Fo {
        Fo::atom("S", vec![var(x)])
    }

    /// 2-colorability of the symmetric graph:
    /// ∃S ∀x∀y (¬E(x,y) ∨ (S(x) ∧ ¬S(y)) ∨ (¬S(x) ∧ S(y))).
    fn two_colorable() -> Eso {
        let matrix = Fo::Or(vec![
            e("x", "y").negate(),
            Fo::And(vec![s1("x"), s1("y").negate()]),
            Fo::And(vec![s1("x").negate(), s1("y")]),
        ])
        .forall("y")
        .forall("x");
        Eso::new(vec![("S", 1)], matrix)
    }

    /// ∃S ∀x ∃y (E(x,y) ∧ S(y)): every vertex has an out-neighbour (S can
    /// be everything) — has a genuine ∀∃ alternation for Skolemization.
    fn out_neighbour_in_s() -> Eso {
        let matrix = Fo::And(vec![e("x", "y"), s1("y")]).exists("y").forall("x");
        Eso::new(vec![("S", 1)], matrix)
    }

    #[test]
    fn brute_eval_two_colorability() {
        let f = two_colorable();
        // Even cycles (as symmetric graphs) are 2-colorable; odd are not.
        let c4 = symmetric_cycle(4);
        let c5 = symmetric_cycle(5);
        assert!(f.eval_brute(&c4.to_database("E")));
        assert!(!f.eval_brute(&c5.to_database("E")));
    }

    fn symmetric_cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge_undirected(i as u32, ((i + 1) % n) as u32);
        }
        g
    }

    #[test]
    fn witness_is_a_2_coloring() {
        let f = two_colorable();
        let db = symmetric_cycle(6).to_database("E");
        let w = f.find_witness(&db).expect("C_6 is 2-colorable");
        let s = &w["S"];
        // Check: every edge crosses the cut.
        for t in db.relation("E").unwrap().iter() {
            let x = inflog_core::Tuple::from([t[0]]);
            let y = inflog_core::Tuple::from([t[1]]);
            assert_ne!(s.contains(&x), s.contains(&y));
        }
    }

    #[test]
    fn skolem_nf_shape_no_alternation() {
        // ∀∀ prefix: no witnesses introduced.
        let nf = SkolemNf::of(&two_colorable(), 100);
        assert_eq!(nf.so_vars.len(), 1);
        assert_eq!(nf.foralls.len(), 2);
        assert!(nf.exists.is_empty());
        assert_eq!(nf.disjuncts.len(), 3);
    }

    #[test]
    fn skolem_nf_shape_with_alternation() {
        // ∀x∃y: already ∀*∃* — no witness needed either.
        let nf = SkolemNf::of(&out_neighbour_in_s(), 100);
        assert_eq!(nf.so_vars.len(), 1);
        assert_eq!((nf.foralls.len(), nf.exists.len()), (1, 1));
    }

    #[test]
    fn skolem_nf_eliminates_exists_before_forall() {
        // ∃u ∀x ∃y (E(u,x) → E(x,y)): ∃ before ∀ forces a witness relation.
        let matrix = Fo::Implies(Box::new(e("u", "x")), Box::new(e("x", "y")))
            .exists("y")
            .forall("x")
            .exists("u");
        let eso = Eso::new(vec![], matrix);
        let nf = SkolemNf::of(&eso, 100);
        assert!(
            nf.so_vars.iter().any(|(n, _)| n.starts_with('W')),
            "must introduce a witness relation"
        );
        // Normal form truth-preservation on several graphs.
        for g in [
            DiGraph::path(3),
            DiGraph::cycle(3),
            DiGraph::star(3),
            DiGraph::complete(3),
        ] {
            let db = g.to_database("E");
            assert_eq!(
                eso.eval_brute(&db),
                nf.to_eso().eval_brute(&db),
                "graph {g}"
            );
        }
    }

    #[test]
    fn skolem_nf_preserves_truth_on_fixed_formulas() {
        let formulas = [two_colorable(), out_neighbour_in_s()];
        let graphs = [
            DiGraph::path(3),
            DiGraph::cycle(3),
            DiGraph::cycle(4),
            symmetric_cycle(3),
            symmetric_cycle(4),
            DiGraph::star(4),
        ];
        for f in &formulas {
            let nf = SkolemNf::of(f, 1000).to_eso();
            for g in &graphs {
                let db = g.to_database("E");
                assert_eq!(f.eval_brute(&db), nf.eval_brute(&db), "graph {g}");
            }
        }
    }

    #[test]
    fn skolem_nf_preserves_truth_on_random_formulas() {
        // Random small sentences with quantifier alternations over E and S.
        // Brute-forcing the transformed sentence enumerates every witness
        // relation, so only budget-friendly cases are compared exhaustively
        // here (the to_datalog tests cover larger random formulas through
        // the CDCL-backed fixpoint analyzer instead).
        let mut rng = StdRng::seed_from_u64(23);
        let mut checked = 0;
        for trial in 0..40 {
            let f = random_sentence(&mut rng, 2);
            let eso = Eso::new(vec![("S", 1)], f);
            let nf = SkolemNf::of(&eso, 10_000).to_eso();
            let n = 2usize;
            let budget: usize = nf.so_vars.iter().map(|(_, k)| n.pow(*k as u32)).sum();
            if budget > 14 {
                continue;
            }
            checked += 1;
            let g = DiGraph::random_gnp(n, 0.5, &mut rng);
            let db = g.to_database("E");
            assert_eq!(
                eso.eval_brute(&db),
                nf.eval_brute(&db),
                "trial {trial}, formula {}, graph {g}",
                eso.matrix
            );
        }
        assert!(checked >= 5, "too few checkable cases ({checked})");
    }

    /// Random quantified sentence over variables v0..v3 using E/2 and S/1.
    fn random_sentence(rng: &mut StdRng, depth: usize) -> Fo {
        let vars = ["v0", "v1", "v2", "v3"];
        fn atom(rng: &mut StdRng, vars: &[&str]) -> Fo {
            let x = vars[rng.gen_range(0..vars.len())];
            let y = vars[rng.gen_range(0..vars.len())];
            if rng.gen_bool(0.5) {
                Fo::atom("E", vec![var(x), var(y)])
            } else {
                Fo::atom("S", vec![var(x)])
            }
        }
        fn go(rng: &mut StdRng, depth: usize, vars: &[&str]) -> Fo {
            if depth == 0 {
                let a = atom(rng, vars);
                return if rng.gen_bool(0.4) { a.negate() } else { a };
            }
            match rng.gen_range(0..5) {
                0 => Fo::And(vec![go(rng, depth - 1, vars), go(rng, depth - 1, vars)]),
                1 => Fo::Or(vec![go(rng, depth - 1, vars), go(rng, depth - 1, vars)]),
                2 => go(rng, depth - 1, vars).negate(),
                3 => go(rng, depth - 1, vars).forall(vars[rng.gen_range(0..vars.len())]),
                _ => go(rng, depth - 1, vars).exists(vars[rng.gen_range(0..vars.len())]),
            }
        }
        // Close the formula: quantify all four variables at the outside.
        let mut f = go(rng, depth, &vars);
        for v in vars {
            f = if rng.gen_bool(0.5) {
                f.forall(v)
            } else {
                f.exists(v)
            };
        }
        f
    }

    #[test]
    fn to_eso_roundtrip_structure() {
        let nf = SkolemNf::of(&two_colorable(), 100);
        let back = nf.to_eso();
        assert_eq!(back.so_vars, nf.so_vars);
        assert!(back.matrix.free_vars().is_empty());
    }
}
