//! The paper's DATALOG¬ programs, verbatim.
//!
//! Each constructor returns the program exactly as printed in the paper
//! (§2 for π₁–π₃, Example 1 for π_SAT, §3 for π_COL, §4 for the distance
//! program), so experiments and tests can cite rule-for-rule.

use inflog_syntax::{parse_program, Program};

fn parse(src: &str) -> Program {
    parse_program(src).expect("paper programs are well-formed")
}

/// π₁ (§2): `T(x) <- E(y,x), !T(y)`.
///
/// On the path `L_n` it has a unique fixpoint `{2, 4, ...}`; on odd cycles
/// none; on even cycles exactly two incomparable ones; on `G_n` (disjoint
/// even cycles) exponentially many.
pub fn pi1() -> Program {
    parse("T(x) :- E(y, x), !T(y).")
}

/// π₂ (§2): transitive closure `S1` plus the non-monotone product
/// `S2(x,y,z,w) <- S1(x,y), !S1(z,w)`.
pub fn pi2() -> Program {
    parse(
        "
        S1(x, y) :- E(x, y).
        S1(x, y) :- E(x, z), S1(z, y).
        S2(x, y, z, w) :- S1(x, y), !S1(z, w).
        ",
    )
}

/// π₃ (§2): the DATALOG (negation-free) transitive-closure program.
pub fn pi3_tc() -> Program {
    parse(
        "
        S(x, y) :- E(x, y).
        S(x, y) :- E(x, z), S(z, y).
        ",
    )
}

/// The bare toggle rule `T(z) <- !T(w)` (§3): no fixpoint on nonempty
/// universes — the paper's gadget forcing `Q = A^n` in Theorem 1.
pub fn toggle() -> Program {
    parse("T(z) :- !T(w).")
}

/// π_SAT (Example 1): over the vocabulary `(V/1, P/2, N/2)`,
///
/// ```text
/// S(x) <- S(x)
/// Q(x) <- V(x)
/// Q(x) <- !S(x), P(x, y), S(y)
/// Q(x) <- !S(x), N(x, y), !S(y)
/// T(z) <- !Q(u), !T(w)
/// ```
///
/// has a fixpoint on `D(I)` iff the SAT instance `I` is satisfiable, with a
/// bijection between fixpoints and satisfying assignments (Theorem 2).
pub fn pi_sat() -> Program {
    parse(
        "
        S(x) :- S(x).
        Q(x) :- V(x).
        Q(x) :- !S(x), P(x, y), S(y).
        Q(x) :- !S(x), N(x, y), !S(y).
        T(z) :- !Q(u), !T(w).
        ",
    )
}

/// π_COL (§3, before Lemma 1): has a fixpoint on `E` iff the graph is
/// 3-colorable.
pub fn pi_col() -> Program {
    parse(
        "
        R(x) :- R(x).
        B(x) :- B(x).
        G(x) :- G(x).
        P(x) :- E(x, y), R(x), R(y).
        P(x) :- E(x, y), B(x), B(y).
        P(x) :- E(x, y), G(x), G(y).
        P(x) :- G(x), B(x).
        P(x) :- B(x), R(x).
        P(x) :- R(x), G(x).
        P(x) :- !R(x), !B(x), !G(x).
        T(z) :- P(x), !T(w).
        ",
    )
}

/// The §4 distance-query program (Proposition 2), carrier `S3`:
///
/// ```text
/// S1(x, y) <- E(x, y)
/// S1(x, y) <- E(x, z), S1(z, y)
/// S2(x', y') <- E(x', y')
/// S2(x', y') <- E(x', z'), S2(z', y')
/// S3(x, y, x', y') <- E(x, y), !S2(x', y')
/// S3(x, y, x', y') <- E(x, z), S1(z, y), !S2(x', y')
/// ```
///
/// Under **inflationary** semantics `S3` computes the distance query
/// `D(x, y, x*, y*)`; under **stratified** semantics the same program
/// computes `TC(x, y) ∧ ¬TC(x*, y*)` — the paper's example separating the
/// two semantics.
pub fn distance_program() -> Program {
    parse(
        "
        S1(x, y) :- E(x, y).
        S1(x, y) :- E(x, z), S1(z, y).
        S2(x', y') :- E(x', y').
        S2(x', y') :- E(x', z'), S2(z', y').
        S3(x, y, x', y') :- E(x, y), !S2(x', y').
        S3(x, y, x', y') :- E(x, z), S1(z, y), !S2(x', y').
        ",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use inflog_syntax::validate;

    #[test]
    fn all_programs_parse_and_validate() {
        for (name, p) in [
            ("pi1", pi1()),
            ("pi2", pi2()),
            ("pi3", pi3_tc()),
            ("toggle", toggle()),
            ("pi_sat", pi_sat()),
            ("pi_col", pi_col()),
            ("distance", distance_program()),
        ] {
            let r = validate(&p);
            assert!(r.is_ok(), "{name}: {:?}", r.errors);
            assert!(!p.is_empty(), "{name} parses to rules");
        }
    }

    #[test]
    fn classifications_match_paper() {
        // §2: π₃ is DATALOG; π₁, π₂ are not.
        assert!(pi3_tc().is_positive());
        assert!(!pi1().is_positive());
        assert!(!pi2().is_positive());
        // EDB/IDB splits.
        assert_eq!(
            pi1().edb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["E"]
        );
        assert_eq!(
            pi_sat().edb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["N", "P", "V"]
        );
        assert_eq!(pi_sat().idb_predicates().len(), 3); // S, Q, T
        assert_eq!(pi_col().idb_predicates().len(), 5); // R, B, G, P, T
    }

    #[test]
    fn toggle_and_pi_sat_are_unsafe_but_legal() {
        // The paper's flagship rules are classically unsafe; our validator
        // must accept them with warnings only.
        for p in [toggle(), pi_sat()] {
            let r = validate(&p);
            assert!(r.is_ok());
            assert!(!r.is_safe(), "toggle rules warn about domain grounding");
        }
    }

    #[test]
    fn distance_program_arities() {
        let p = distance_program();
        let a = p.predicate_arities();
        assert_eq!(a["S1"], 2);
        assert_eq!(a["S2"], 2);
        assert_eq!(a["S3"], 4);
        assert_eq!(a["E"], 2);
    }
}
