//! Example 1: SATISFIABILITY instances as databases `D(I)`.
//!
//! The universe of `D(I)` is `variables ∪ clauses`; `V` holds the
//! variables; `P(c, v)` / `N(c, v)` record positive / negative occurrences.
//! The correspondence is one-to-one both ways, and — the content of
//! Theorem 2 — satisfying assignments of `I` correspond bijectively to
//! fixpoints of `(π_SAT, D(I))`: a fixpoint's `S` relation *is* the set of
//! true variables.

use inflog_core::{Database, Relation, Tuple};
use inflog_eval::{CompiledProgram, Interp};
use inflog_sat::{Cnf, Lit, Var};

/// Name of the universe element for variable `i`.
pub fn var_name(i: usize) -> String {
    format!("x{i}")
}

/// Name of the universe element for clause `j`.
pub fn clause_name(j: usize) -> String {
    format!("c{j}")
}

/// Builds the database `D(I)` of Example 1 from a CNF instance.
///
/// # Panics
/// Panics on an instance with neither variables nor clauses (the paper's
/// framework assumes a nonempty universe).
pub fn cnf_to_database(cnf: &Cnf) -> Database {
    assert!(
        cnf.num_vars() > 0 || cnf.num_clauses() > 0,
        "empty instance has an empty universe"
    );
    let mut db = Database::new();
    for i in 0..cnf.num_vars() {
        let name = var_name(i);
        db.universe_mut().intern(&name);
        db.insert_named_fact("V", &[&name]).expect("fresh fact");
    }
    // Declare P and N up front so even occurrence-free instances have them.
    db.declare_relation("P", 2).expect("fresh");
    db.declare_relation("N", 2).expect("fresh");
    for (j, clause) in cnf.clauses().iter().enumerate() {
        let cname = clause_name(j);
        db.universe_mut().intern(&cname);
        for lit in clause {
            let vname = var_name(lit.var().index());
            let rel = if lit.is_positive() { "P" } else { "N" };
            db.insert_named_fact(rel, &[&cname, &vname])
                .expect("interned");
        }
    }
    db
}

/// Reads a database over `(V, P, N)` back into a CNF instance (the inverse
/// direction of Example 1's correspondence).
///
/// Universe elements in `V` become variables (in universe order); the
/// remaining elements become clauses.
pub fn database_to_cnf(db: &Database) -> Cnf {
    let empty = Relation::new(1);
    let v_rel = db.relation("V").unwrap_or(&empty);
    let mut var_of = std::collections::HashMap::new();
    let mut clauses_elems = Vec::new();
    for c in db.universe().iter() {
        if v_rel.contains(&Tuple::from([c])) {
            let idx = var_of.len();
            var_of.insert(c, idx);
        } else {
            clauses_elems.push(c);
        }
    }
    let mut cnf = Cnf::with_vars(var_of.len());
    for ce in clauses_elems {
        let mut clause: Vec<Lit> = Vec::new();
        for (rel, positive) in [("P", true), ("N", false)] {
            if let Some(r) = db.relation(rel) {
                for t in r.iter() {
                    if t[0] == ce {
                        let v = var_of[&t[1]];
                        clause.push(Lit::new(Var(v as u32), positive));
                    }
                }
            }
        }
        clause.sort();
        cnf.add_clause(clause);
    }
    cnf
}

/// Extracts the satisfying assignment encoded by a fixpoint of
/// `(π_SAT, D(I))`: variable `i` is true iff `S` contains `x_i`.
///
/// Returns `None` if the interpretation has no `S` relation.
pub fn assignment_from_fixpoint(
    cp: &CompiledProgram,
    db: &Database,
    fixpoint: &Interp,
    num_vars: usize,
) -> Option<Vec<bool>> {
    let sid = cp.idb_id("S")?;
    let s = fixpoint.get(sid);
    let mut out = Vec::with_capacity(num_vars);
    for i in 0..num_vars {
        let c = db.universe().lookup(&var_name(i))?;
        out.push(s.contains(&Tuple::from([c])));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::pi_sat;
    use inflog_fixpoint::FixpointAnalyzer;
    use inflog_sat::gen::random_ksat;
    use inflog_sat::{brute_force_count, Solver};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cnf(clauses: &[&[i32]], num_vars: usize) -> Cnf {
        let mut cnf = Cnf::with_vars(num_vars);
        for c in clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&l| Lit::new(Var(l.unsigned_abs() - 1), l > 0))
                .collect();
            cnf.add_clause(lits);
        }
        cnf
    }

    #[test]
    fn database_shape() {
        // (x1 ∨ ¬x2) ∧ (x2): 2 vars + 2 clauses.
        let cnf = tiny_cnf(&[&[1, -2], &[2]], 2);
        let db = cnf_to_database(&cnf);
        assert_eq!(db.universe_size(), 4);
        assert_eq!(db.relation("V").unwrap().len(), 2);
        assert_eq!(db.relation("P").unwrap().len(), 2); // x1 in c0, x2 in c1
        assert_eq!(db.relation("N").unwrap().len(), 1); // x2 in c0
    }

    #[test]
    fn roundtrip_database_to_cnf() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10 {
            let cnf = random_ksat(6, 10, 3, &mut rng);
            let db = cnf_to_database(&cnf);
            let back = database_to_cnf(&db);
            assert_eq!(back.num_vars(), cnf.num_vars());
            assert_eq!(back.num_clauses(), cnf.num_clauses());
            // Clause sets must be equal as sets of literal sets.
            let norm = |c: &Cnf| {
                let mut v: Vec<Vec<Lit>> = c
                    .clauses()
                    .iter()
                    .map(|cl| {
                        let mut s = cl.clone();
                        s.sort();
                        s
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(norm(&back), norm(&cnf));
        }
    }

    #[test]
    fn theorem1_fixpoint_iff_satisfiable() {
        // Crafted SAT and UNSAT instances.
        let sat_inst = tiny_cnf(&[&[1, 2], &[-1, 2], &[1, -2]], 2);
        let unsat_inst = tiny_cnf(&[&[1], &[-1]], 1);
        for (cnf, expect) in [(sat_inst, true), (unsat_inst, false)] {
            assert_eq!(Solver::from_cnf(&cnf).solve().is_sat(), expect);
            let db = cnf_to_database(&cnf);
            let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).unwrap();
            assert_eq!(analyzer.fixpoint_exists(), expect);
        }
    }

    #[test]
    fn theorem1_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..10 {
            let cnf = random_ksat(4, 10, 3, &mut rng);
            let expect = Solver::from_cnf(&cnf).solve().is_sat();
            let db = cnf_to_database(&cnf);
            let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).unwrap();
            assert_eq!(analyzer.fixpoint_exists(), expect, "trial {trial}");
        }
    }

    #[test]
    fn theorem2_bijection_counts() {
        // #fixpoints of (π_SAT, D(I)) == #satisfying assignments of I.
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..8 {
            let cnf = random_ksat(4, 6, 2, &mut rng);
            let models = brute_force_count(&cnf);
            let db = cnf_to_database(&cnf);
            let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).unwrap();
            let (fps, complete) = analyzer.count_fixpoints(1 << 12);
            assert!(complete);
            assert_eq!(fps, models, "trial {trial}");
        }
    }

    #[test]
    fn theorem2_unique_sat_iff_unique_fixpoint() {
        // x1 ∧ (x1 ∨ x2) ∧ ¬x2 has exactly one model.
        let unique = tiny_cnf(&[&[1], &[1, 2], &[-2]], 2);
        assert_eq!(brute_force_count(&unique), 1);
        let db = cnf_to_database(&unique);
        assert!(FixpointAnalyzer::new(&pi_sat(), &db)
            .unwrap()
            .has_unique_fixpoint());

        // x1 ∨ x2 has three.
        let multi = tiny_cnf(&[&[1, 2]], 2);
        let db = cnf_to_database(&multi);
        assert!(!FixpointAnalyzer::new(&pi_sat(), &db)
            .unwrap()
            .has_unique_fixpoint());
    }

    #[test]
    fn fixpoints_decode_to_satisfying_assignments() {
        let mut rng = StdRng::seed_from_u64(8);
        let cnf = random_ksat(4, 8, 3, &mut rng);
        let db = cnf_to_database(&cnf);
        let analyzer = FixpointAnalyzer::new(&pi_sat(), &db).unwrap();
        let fps = analyzer.enumerate_fixpoints(1 << 10);
        for f in &fps {
            let asg = assignment_from_fixpoint(analyzer.compiled(), &db, f, cnf.num_vars())
                .expect("S relation present");
            assert!(cnf.eval(&asg), "decoded assignment must satisfy");
        }
        // Distinct fixpoints decode to distinct assignments (bijection).
        let mut assignments: Vec<Vec<bool>> = fps
            .iter()
            .map(|f| assignment_from_fixpoint(analyzer.compiled(), &db, f, cnf.num_vars()).unwrap())
            .collect();
        assignments.sort();
        let before = assignments.len();
        assignments.dedup();
        assert_eq!(assignments.len(), before);
    }

    #[test]
    #[should_panic(expected = "empty instance")]
    fn empty_instance_panics() {
        let _ = cnf_to_database(&Cnf::new());
    }
}
