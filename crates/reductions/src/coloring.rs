//! 3-COLORING checkers: independent ground truths for Lemma 1 / Theorem 4.
//!
//! A digraph is treated as its underlying undirected graph; self-loops make
//! it uncolorable. Two implementations with different trust bases: a
//! brute-force enumerator for small graphs and a SAT encoding solved by the
//! CDCL engine for larger ones.

use inflog_core::graphs::DiGraph;
use inflog_sat::{Cnf, SolveResult, Solver, Var};

/// Brute-force 3-colorability (up to ~15 vertices: `3^n` assignments).
///
/// # Panics
/// Panics above 16 vertices.
pub fn is_3colorable_brute(g: &DiGraph) -> bool {
    let n = g.num_vertices();
    assert!(n <= 16, "brute-force coloring limited to 16 vertices");
    if n == 0 {
        return true;
    }
    let mut colors = vec![0u8; n];
    loop {
        if valid_coloring(g, &colors) {
            return true;
        }
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            colors[i] += 1;
            if colors[i] < 3 {
                break;
            }
            colors[i] = 0;
            i += 1;
        }
    }
}

/// Checks a specific coloring.
pub fn valid_coloring(g: &DiGraph, colors: &[u8]) -> bool {
    g.edges()
        .all(|(u, v)| u != v && colors[u as usize] != colors[v as usize])
}

/// Encodes 3-colorability as CNF: variable `(v, c)` = "vertex v has color
/// c"; at-least-one and at-most-one per vertex, conflict clauses per edge.
pub fn three_coloring_cnf(g: &DiGraph) -> Cnf {
    let n = g.num_vertices();
    let mut cnf = Cnf::with_vars(3 * n);
    let var = |v: usize, c: usize| Var((3 * v + c) as u32);
    for v in 0..n {
        cnf.add_clause(vec![var(v, 0).pos(), var(v, 1).pos(), var(v, 2).pos()]);
        for c1 in 0..3 {
            for c2 in (c1 + 1)..3 {
                cnf.add_clause(vec![var(v, c1).neg(), var(v, c2).neg()]);
            }
        }
    }
    for (u, v) in g.edges() {
        if u == v {
            // Self-loop: unsatisfiable on purpose.
            for c in 0..3 {
                cnf.add_clause(vec![var(u as usize, c).neg()]);
            }
            continue;
        }
        for c in 0..3 {
            cnf.add_clause(vec![var(u as usize, c).neg(), var(v as usize, c).neg()]);
        }
    }
    cnf
}

/// SAT-based 3-coloring; returns a coloring if one exists.
pub fn is_3colorable_sat(g: &DiGraph) -> Option<Vec<u8>> {
    if g.num_vertices() == 0 {
        return Some(Vec::new());
    }
    let cnf = three_coloring_cnf(g);
    match Solver::from_cnf(&cnf).solve() {
        SolveResult::Unsat => None,
        SolveResult::Sat(model) => {
            let colors: Vec<u8> = (0..g.num_vertices())
                .map(|v| {
                    (0..3)
                        .find(|&c| model[3 * v + c])
                        .expect("at-least-one clause") as u8
                })
                .collect();
            Some(colors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::pi_col;
    use inflog_fixpoint::FixpointAnalyzer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_graphs() {
        assert!(is_3colorable_brute(&DiGraph::cycle(3)));
        assert!(is_3colorable_brute(&DiGraph::cycle(5)));
        assert!(is_3colorable_brute(&DiGraph::complete(3)));
        assert!(!is_3colorable_brute(&DiGraph::complete(4)));
        assert!(is_3colorable_brute(&DiGraph::petersen()));
        assert!(is_3colorable_brute(&DiGraph::complete_bipartite(3, 3)));
        let mut loopy = DiGraph::new(2);
        loopy.add_edge(0, 1);
        loopy.add_edge(1, 1);
        assert!(!is_3colorable_brute(&loopy));
        assert!(is_3colorable_brute(&DiGraph::new(0)));
    }

    #[test]
    fn sat_checker_agrees_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..15 {
            let g = DiGraph::random_undirected(8, 0.4, &mut rng);
            let brute = is_3colorable_brute(&g);
            let sat = is_3colorable_sat(&g);
            assert_eq!(sat.is_some(), brute, "trial {trial}: {g}");
            if let Some(colors) = sat {
                assert!(valid_coloring(&g, &colors), "trial {trial}");
            }
        }
    }

    #[test]
    fn sat_checker_scales_past_brute_force() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = DiGraph::random_undirected(40, 0.08, &mut rng);
        // Just exercise it; sparse graphs of this size are colorable w.h.p.
        let r = is_3colorable_sat(&g);
        if let Some(colors) = r {
            assert!(valid_coloring(&g, &colors));
        }
    }

    #[test]
    fn lemma1_pi_col_fixpoint_iff_colorable() {
        // The paper's exact π_COL against both checkers.
        let cases = [
            DiGraph::cycle(3),
            DiGraph::cycle(4),
            DiGraph::complete(4),
            DiGraph::complete(3),
            DiGraph::complete_bipartite(2, 2),
            DiGraph::star(4),
        ];
        for g in cases {
            let expect = is_3colorable_brute(&g);
            let db = g.to_database("E");
            let analyzer = FixpointAnalyzer::new(&pi_col(), &db).unwrap();
            assert_eq!(analyzer.fixpoint_exists(), expect, "Lemma 1 on {g}");
        }
    }

    #[test]
    fn lemma1_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(12);
        for trial in 0..6 {
            let g = DiGraph::random_undirected(6, 0.5, &mut rng);
            let expect = is_3colorable_brute(&g);
            let db = g.to_database("E");
            let analyzer = FixpointAnalyzer::new(&pi_col(), &db).unwrap();
            assert_eq!(analyzer.fixpoint_exists(), expect, "trial {trial}: {g}");
        }
    }

    #[test]
    fn fixpoint_colors_are_valid_colorings() {
        // From a π_COL fixpoint, R/B/G restricted to vertices form a
        // proper coloring.
        let g = DiGraph::cycle(5);
        let db = g.to_database("E");
        let analyzer = FixpointAnalyzer::new(&pi_col(), &db).unwrap();
        let fix = analyzer.find_fixpoint().expect("C5 is 3-colorable");
        let cp = analyzer.compiled();
        let mut colors = vec![3u8; 5];
        for (ci, pred) in ["R", "B", "G"].iter().enumerate() {
            let rel = fix.get(cp.idb_id(pred).unwrap());
            for t in rel.iter() {
                colors[t[0].index()] = ci as u8;
            }
        }
        assert!(colors.iter().all(|&c| c < 3), "all vertices colored");
        assert!(valid_coloring(&g, &colors));
    }
}
