//! Hamilton circuits: the paper's illustrating member of the class US
//! ("the collection of graphs having a *unique* Hamilton circuit").

use inflog_core::graphs::DiGraph;

/// Counts directed Hamilton circuits by backtracking, up to `limit`.
///
/// Circuits are counted as cyclic sequences anchored at vertex 0 (so each
/// circuit is counted once, not `n` times); a graph with fewer than 2
/// vertices has none (a self-loop is not a circuit here).
pub fn count_hamilton_circuits(g: &DiGraph, limit: usize) -> usize {
    let n = g.num_vertices();
    if n < 2 {
        return 0;
    }
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut count = 0usize;
    backtrack(g, 0, 1, &mut visited, &mut count, limit);
    count
}

fn backtrack(
    g: &DiGraph,
    current: u32,
    placed: usize,
    visited: &mut Vec<bool>,
    count: &mut usize,
    limit: usize,
) {
    if *count >= limit {
        return;
    }
    if placed == g.num_vertices() {
        if g.has_edge(current, 0) {
            *count += 1;
        }
        return;
    }
    let next: Vec<u32> = g.successors(current).collect();
    for v in next {
        if !visited[v as usize] {
            visited[v as usize] = true;
            backtrack(g, v, placed + 1, visited, count, limit);
            visited[v as usize] = false;
        }
    }
}

/// The US predicate: does the graph have exactly one Hamilton circuit?
pub fn has_unique_hamilton_circuit(g: &DiGraph) -> bool {
    count_hamilton_circuits(g, 2) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_cycle_has_exactly_one() {
        for n in 2..=6usize {
            let g = DiGraph::cycle(n);
            assert_eq!(count_hamilton_circuits(&g, 10), 1, "C_{n}");
            assert!(has_unique_hamilton_circuit(&g));
        }
    }

    #[test]
    fn path_has_none() {
        assert_eq!(count_hamilton_circuits(&DiGraph::path(4), 10), 0);
        assert!(!has_unique_hamilton_circuit(&DiGraph::path(4)));
    }

    #[test]
    fn complete_digraph_counts() {
        // K_n (directed, both directions): (n-1)! Hamilton circuits.
        assert_eq!(count_hamilton_circuits(&DiGraph::complete(3), 100), 2);
        assert_eq!(count_hamilton_circuits(&DiGraph::complete(4), 100), 6);
        assert!(!has_unique_hamilton_circuit(&DiGraph::complete(4)));
    }

    #[test]
    fn limit_short_circuits() {
        assert_eq!(count_hamilton_circuits(&DiGraph::complete(5), 3), 3);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(count_hamilton_circuits(&DiGraph::new(0), 10), 0);
        assert_eq!(count_hamilton_circuits(&DiGraph::new(1), 10), 0);
        let mut loopy = DiGraph::new(1);
        loopy.add_edge(0, 0);
        assert_eq!(count_hamilton_circuits(&loopy, 10), 0);
        assert_eq!(count_hamilton_circuits(&DiGraph::cycle(2), 10), 1);
    }

    #[test]
    fn two_cycles_sharing_no_vertex() {
        // Disjoint union of two cycles: no Hamilton circuit.
        let g = DiGraph::disjoint_cycles(2, 3);
        assert_eq!(count_hamilton_circuits(&g, 10), 0);
    }
}
