//! # inflog-reductions
//!
//! The worked examples and reductions of *"Why Not Negation by Fixpoint?"*,
//! executable:
//!
//! * [`programs`] — the paper's programs verbatim: π₁, π₂, π₃, π_SAT
//!   (Example 1), π_COL (Lemma 1), the toggle rule, the transitive-closure
//!   program and the §4 distance-query program;
//! * [`sat_db`] — Example 1's encoding of SATISFIABILITY instances as
//!   databases `D(I)` over the vocabulary `(V/1, P/2, N/2)`, both
//!   directions, plus the Theorem 2 bijection between satisfying
//!   assignments of `I` and fixpoints of `(π_SAT, D(I))`;
//! * [`coloring`] — 3-COLORING: brute-force and SAT-based checkers
//!   (independent ground truths for Lemma 1 / Theorem 4) and workload
//!   graphs;
//! * [`hamilton`] — Hamilton-circuit counting (the paper's illustrating
//!   member of US: "does a graph have a *unique* Hamilton circuit?");
//! * [`distance`] — BFS-based baselines for the distance query
//!   `D(x, y, x*, y*)` of Proposition 2 and for the `TC ∧ ¬TC` relation the
//!   *stratified* reading of the same program computes (§4's divergence).

pub mod coloring;
pub mod distance;
pub mod hamilton;
pub mod programs;
pub mod sat_db;

pub use coloring::{is_3colorable_brute, is_3colorable_sat};
pub use distance::{distance_query_baseline, stratified_reading_baseline};
pub use hamilton::count_hamilton_circuits;
pub use sat_db::{assignment_from_fixpoint, cnf_to_database, database_to_cnf};
