//! BFS baselines for the §4 distance query and its stratified counterpart.
//!
//! Proposition 2's query: `D(x, y, x*, y*)` — "is there a path from x to y
//! shorter than or equal to any path from x* to y*?", with the convention
//! that the answer is yes when x reaches y but x* does not reach y*.
//! Equivalently: `dist(x,y) < ∞ ∧ dist(x,y) ≤ dist(x*,y*)`.
//!
//! The same six-rule program read under **stratified** semantics computes
//! `TC(x,y) ∧ ¬TC(x*,y*)` instead (§4's closing remark); both baselines
//! live here so experiment E8 can exhibit the divergence.

use inflog_core::graphs::DiGraph;
use std::collections::BTreeSet;

/// All quadruples `(x, y, x*, y*)` satisfying the distance query.
pub fn distance_query_baseline(g: &DiGraph) -> BTreeSet<(u32, u32, u32, u32)> {
    let n = g.num_vertices() as u32;
    let dist = nonempty_path_distances(g);
    let mut out = BTreeSet::new();
    for x in 0..n {
        for y in 0..n {
            let Some(d) = dist[x as usize][y as usize] else {
                continue;
            };
            for xs in 0..n {
                for ys in 0..n {
                    let ok = match dist[xs as usize][ys as usize] {
                        None => true,
                        Some(ds) => d <= ds,
                    };
                    if ok {
                        out.insert((x, y, xs, ys));
                    }
                }
            }
        }
    }
    out
}

/// All quadruples `(x, y, x*, y*)` with `TC(x,y) ∧ ¬TC(x*,y*)` — what the
/// stratified reading of the distance program computes.
pub fn stratified_reading_baseline(g: &DiGraph) -> BTreeSet<(u32, u32, u32, u32)> {
    let n = g.num_vertices() as u32;
    let tc = g.transitive_closure();
    let mut out = BTreeSet::new();
    for x in 0..n {
        for y in 0..n {
            if !tc.contains(&(x, y)) {
                continue;
            }
            for xs in 0..n {
                for ys in 0..n {
                    if !tc.contains(&(xs, ys)) {
                        out.insert((x, y, xs, ys));
                    }
                }
            }
        }
    }
    out
}

/// Shortest **nonempty** path lengths (`dist[u][v]`; `dist[u][u]` is the
/// shortest cycle through `u`, not 0) — matching the TC program's
/// "path of length ≥ 1" semantics.
pub fn nonempty_path_distances(g: &DiGraph) -> Vec<Vec<Option<usize>>> {
    let n = g.num_vertices();
    (0..n as u32)
        .map(|u| {
            // BFS from the successors of u, then add one edge.
            let mut dist = vec![None; n];
            let mut queue = std::collections::VecDeque::new();
            for v in g.successors(u) {
                if dist[v as usize].is_none() {
                    dist[v as usize] = Some(1usize);
                    queue.push_back(v);
                }
            }
            while let Some(v) = queue.pop_front() {
                let dv = dist[v as usize].expect("queued");
                for w in g.successors(v) {
                    if dist[w as usize].is_none() {
                        dist[w as usize] = Some(dv + 1);
                        queue.push_back(w);
                    }
                }
            }
            dist
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonempty_distances_on_path() {
        let g = DiGraph::path(3);
        let d = nonempty_path_distances(&g);
        assert_eq!(d[0][1], Some(1));
        assert_eq!(d[0][2], Some(2));
        assert_eq!(d[0][0], None, "no cycle through v0");
        assert_eq!(d[2][0], None);
    }

    #[test]
    fn nonempty_distances_on_cycle() {
        let g = DiGraph::cycle(3);
        let d = nonempty_path_distances(&g);
        assert_eq!(d[0][0], Some(3), "shortest cycle has length n");
        assert_eq!(d[0][1], Some(1));
        assert_eq!(d[1][0], Some(2));
    }

    #[test]
    fn distance_query_semantics_on_path() {
        // L_3: dist(0,1)=1, dist(0,2)=2, dist(1,2)=1.
        let g = DiGraph::path(3);
        let d = distance_query_baseline(&g);
        // Shorter-or-equal pair: yes.
        assert!(d.contains(&(0, 1, 0, 2)));
        // Longer: no.
        assert!(!d.contains(&(0, 2, 0, 1)));
        // Equal: yes.
        assert!(d.contains(&(0, 1, 1, 2)));
        // Unreachable target pair: yes whenever source pair connected.
        assert!(d.contains(&(0, 2, 2, 0)));
        // Source pair unreachable: never.
        assert!(!d.contains(&(2, 0, 0, 1)));
    }

    #[test]
    fn stratified_reading_is_tc_and_not_tc() {
        let g = DiGraph::path(3);
        let s = stratified_reading_baseline(&g);
        assert!(s.contains(&(0, 2, 2, 0))); // TC(0,2) ∧ ¬TC(2,0)
        assert!(!s.contains(&(0, 2, 0, 1))); // TC(0,1) holds
        assert!(!s.contains(&(2, 0, 2, 0))); // ¬TC(2,0) as source
    }

    #[test]
    fn queries_differ_in_general() {
        // §4's point: the two semantics compute different relations.
        let g = DiGraph::path(3);
        assert_ne!(distance_query_baseline(&g), stratified_reading_baseline(&g));
        // Distance query contains (0,1,0,2) (1 ≤ 2) but the stratified
        // reading does not (TC(0,2) holds).
        let d = distance_query_baseline(&g);
        let s = stratified_reading_baseline(&g);
        assert!(d.contains(&(0, 1, 0, 2)));
        assert!(!s.contains(&(0, 1, 0, 2)));
    }

    #[test]
    fn tc_is_reducible_to_distance() {
        // Prop 2: TC(x,y) ⟺ D(x,y,x,y).
        for g in [DiGraph::path(4), DiGraph::cycle(4), DiGraph::binary_tree(7)] {
            let d = distance_query_baseline(&g);
            let tc = g.transitive_closure();
            for x in 0..g.num_vertices() as u32 {
                for y in 0..g.num_vertices() as u32 {
                    assert_eq!(
                        d.contains(&(x, y, x, y)),
                        tc.contains(&(x, y)),
                        "({x},{y}) on {g}"
                    );
                }
            }
        }
    }
}
