//! SAT instance generators for the experiments.

use crate::cnf::{Cnf, Lit, Var};
use rand::seq::SliceRandom;
use rand::Rng;

/// Uniform random k-SAT: `num_clauses` clauses of `k` distinct variables
/// with random polarities.
///
/// At ratio `m/n ≈ 4.27` (for k = 3) instances sit near the satisfiability
/// phase transition — the interesting regime for experiment E2's
/// SAT-as-fixpoints tables.
///
/// # Panics
/// Panics if `k > num_vars`.
pub fn random_ksat(num_vars: usize, num_clauses: usize, k: usize, rng: &mut impl Rng) -> Cnf {
    assert!(k <= num_vars, "clause width exceeds variable count");
    let mut cnf = Cnf::with_vars(num_vars);
    let vars: Vec<u32> = (0..num_vars as u32).collect();
    for _ in 0..num_clauses {
        let chosen: Vec<u32> = vars.choose_multiple(rng, k).copied().collect();
        let clause: Vec<Lit> = chosen
            .into_iter()
            .map(|v| Lit::new(Var(v), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

/// The pigeonhole principle PHP(n+1, n): `n + 1` pigeons into `n` holes.
/// Unsatisfiable, and exponentially hard for resolution — a classic
/// stress test.
///
/// Variable `p*n + h` means "pigeon p sits in hole h".
pub fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::with_vars(pigeons * holes);
    let var = |p: usize, h: usize| Var((p * holes + h) as u32);
    // Every pigeon sits somewhere.
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| var(p, h).pos()).collect();
        cnf.add_clause(clause);
    }
    // No two pigeons share a hole.
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause(vec![var(p1, h).neg(), var(p2, h).neg()]);
            }
        }
    }
    cnf
}

/// A satisfiable "hidden assignment" instance: random clauses filtered to
/// keep a planted assignment true. Useful when E2/E3 need guaranteed-SAT
/// inputs.
pub fn planted_ksat(
    num_vars: usize,
    num_clauses: usize,
    k: usize,
    rng: &mut impl Rng,
) -> (Cnf, Vec<bool>) {
    assert!(k <= num_vars);
    let planted: Vec<bool> = (0..num_vars).map(|_| rng.gen_bool(0.5)).collect();
    let mut cnf = Cnf::with_vars(num_vars);
    let vars: Vec<u32> = (0..num_vars as u32).collect();
    let mut added = 0;
    while added < num_clauses {
        let chosen: Vec<u32> = vars.choose_multiple(rng, k).copied().collect();
        let clause: Vec<Lit> = chosen
            .into_iter()
            .map(|v| Lit::new(Var(v), rng.gen_bool(0.5)))
            .collect();
        if clause.iter().any(|l| l.eval(&planted)) {
            cnf.add_clause(clause);
            added += 1;
        }
    }
    (cnf, planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_ksat_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let cnf = random_ksat(10, 30, 3, &mut rng);
        assert_eq!(cnf.num_vars(), 10);
        assert_eq!(cnf.num_clauses(), 30);
        for c in cnf.clauses() {
            assert_eq!(c.len(), 3);
            // Distinct variables within a clause.
            let mut vars: Vec<_> = c.iter().map(|l| l.var()).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn seeded_determinism() {
        let a = random_ksat(8, 20, 3, &mut StdRng::seed_from_u64(7));
        let b = random_ksat(8, 20, 3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn pigeonhole_shape_and_unsat() {
        let cnf = pigeonhole(2); // 3 pigeons, 2 holes
        assert_eq!(cnf.num_vars(), 6);
        assert!(!Solver::from_cnf(&cnf).solve().is_sat());
        assert!(crate::dpll::brute_force_sat(&cnf).is_none());
    }

    #[test]
    fn planted_instances_are_sat() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5 {
            let (cnf, planted) = planted_ksat(10, 42, 3, &mut rng);
            assert!(cnf.eval(&planted), "planted assignment must satisfy");
            assert!(Solver::from_cnf(&cnf).solve().is_sat());
        }
    }

    #[test]
    #[should_panic(expected = "clause width")]
    fn width_over_vars_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = random_ksat(2, 5, 3, &mut rng);
    }
}
