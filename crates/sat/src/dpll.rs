//! Baselines: plain DPLL and exhaustive enumeration.
//!
//! These exist as *independent ground truths* for the CDCL solver (property
//! tests compare verdicts) and as the "naive" arm of the SAT ablation bench.

use crate::cnf::{Cnf, Lit};

/// Decides satisfiability by DPLL: unit propagation + first-unassigned
/// branching, no learning. Returns a model if SAT.
pub fn dpll_sat(cnf: &Cnf) -> Option<Vec<bool>> {
    let clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    let mut assign: Vec<Option<bool>> = vec![None; cnf.num_vars()];
    if dpll(&clauses, &mut assign) {
        Some(assign.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

fn lit_value(l: Lit, assign: &[Option<bool>]) -> Option<bool> {
    assign[l.var().index()].map(|v| v == l.is_positive())
}

fn dpll(clauses: &[Vec<Lit>], assign: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut unit: Option<Lit> = None;
        for c in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for &l in c {
                match lit_value(l, assign) {
                    Some(true) => {
                        satisfied = true;
                        break;
                    }
                    Some(false) => {}
                    None => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => {
                    // Conflict: undo propagation.
                    for &v in &trail {
                        assign[v] = None;
                    }
                    return false;
                }
                1 => {
                    unit = unassigned;
                    break;
                }
                _ => {}
            }
        }
        match unit {
            Some(l) => {
                assign[l.var().index()] = Some(l.is_positive());
                trail.push(l.var().index());
            }
            None => break,
        }
    }

    // Branch.
    match assign.iter().position(Option::is_none) {
        None => true, // every clause checked satisfied or has no unassigned left
        Some(v) => {
            for val in [true, false] {
                assign[v] = Some(val);
                if dpll(clauses, assign) {
                    return true;
                }
            }
            assign[v] = None;
            for &w in &trail {
                assign[w] = None;
            }
            false
        }
    }
}

/// Exhaustively searches all `2^n` assignments; returns the first model.
///
/// Ground truth for tests; only usable for small `n`.
///
/// # Panics
/// Panics if the formula has more than 24 variables.
pub fn brute_force_sat(cnf: &Cnf) -> Option<Vec<bool>> {
    let n = cnf.num_vars();
    assert!(n <= 24, "brute force limited to 24 variables");
    for bits in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if cnf.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

/// Exhaustively counts models.
///
/// # Panics
/// Panics if the formula has more than 24 variables.
pub fn brute_force_count(cnf: &Cnf) -> u64 {
    let n = cnf.num_vars();
    assert!(n <= 24, "brute force limited to 24 variables");
    (0u64..(1u64 << n))
        .filter(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&assignment)
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_ksat;
    use crate::solver::Solver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dpll_simple() {
        let mut f = Cnf::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause(vec![a.pos(), b.pos()]);
        f.add_clause(vec![a.neg()]);
        let m = dpll_sat(&f).expect("SAT");
        assert!(!m[0] && m[1]);
    }

    #[test]
    fn dpll_unsat() {
        let mut f = Cnf::new();
        let a = f.new_var();
        f.add_clause(vec![a.pos()]);
        f.add_clause(vec![a.neg()]);
        assert!(dpll_sat(&f).is_none());
    }

    #[test]
    fn dpll_empty_formula() {
        let mut f = Cnf::new();
        f.new_var();
        assert!(dpll_sat(&f).is_some());
    }

    #[test]
    fn dpll_model_is_valid() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let cnf = random_ksat(9, 35, 3, &mut rng);
            if let Some(m) = dpll_sat(&cnf) {
                assert!(cnf.eval(&m));
            }
        }
    }

    #[test]
    fn three_solvers_agree() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..40 {
            let cnf = random_ksat(7, 30, 3, &mut rng);
            let brute = brute_force_sat(&cnf).is_some();
            let dpll = dpll_sat(&cnf).is_some();
            let cdcl = Solver::from_cnf(&cnf).solve().is_sat();
            assert_eq!(brute, dpll, "trial {trial}: dpll");
            assert_eq!(brute, cdcl, "trial {trial}: cdcl");
        }
    }

    #[test]
    fn brute_force_count_known() {
        // (a ∨ b) has 3 models over 2 variables.
        let mut f = Cnf::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause(vec![a.pos(), b.pos()]);
        assert_eq!(brute_force_count(&f), 3);
        // Empty formula over n vars: 2^n models.
        let mut g = Cnf::new();
        g.new_vars(4);
        assert_eq!(brute_force_count(&g), 16);
    }
}
