//! # inflog-sat
//!
//! A from-scratch SAT solving substrate for the **inflog** reproduction of
//! *"Why Not Negation by Fixpoint?"*.
//!
//! The paper's §3 results all live in NP-land: fixpoint existence for a
//! fixed DATALOG¬ program is NP-computable ("guess relations of size `n^s`
//! and verify"), unique-fixpoint is US-complete (counting accepting
//! computations), and the least-fixpoint FONP algorithm makes first-order
//! queries *to an NP oracle*. This crate is that oracle, implemented
//! honestly:
//!
//! * [`cnf`] — literals, clauses, CNF builders and Tseitin gate encodings;
//! * [`solver`] — a CDCL solver (two-watched literals, VSIDS-style activity,
//!   first-UIP clause learning, Luby restarts, phase saving, **assumption
//!   solving** for the FONP per-tuple queries);
//! * [`dpll`] — a plain DPLL baseline plus exhaustive-enumeration ground
//!   truths for testing (and the naive/CDCL ablation bench);
//! * [`enumerate`] — model enumeration/counting over a projection set with
//!   blocking clauses (the US-class "unique solution" machinery);
//! * [`dimacs`] — DIMACS CNF I/O;
//! * [`gen`] — workload generators (random k-SAT, pigeonhole).

pub mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod enumerate;
pub mod gen;
pub mod solver;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use dpll::{brute_force_count, brute_force_sat, dpll_sat};
pub use enumerate::{count_models, enumerate_models, CountResult};
pub use solver::{SolveResult, Solver};
