//! Propositional CNF: variables, literals, clauses, formula builders and
//! Tseitin gate encodings.

use std::fmt;

/// A propositional variable, densely numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Index into per-variable arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    ///
    /// (Deliberately named like [`Var::pos`]; `Var` has no arithmetic
    /// negation, so no confusion with `std::ops::Neg` arises in practice.)
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable with a polarity, encoded as `2*var + (negated?1:0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal with the given polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 * 2 + u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Dense index (`2*var + sign`) into per-literal arrays (watch lists).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Whether this literal is true under a total assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var().index()] == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "-{}", self.var())
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula under construction.
///
/// `Cnf` is the interchange type between the encoders (fixpoint completion,
/// reductions), the solvers, and DIMACS I/O.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a formula with `n` pre-allocated variables.
    pub fn with_vars(n: usize) -> Self {
        Cnf {
            num_vars: n,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.num_vars).expect("too many variables"));
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl Into<Clause>) {
        let c = lits.into();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} references unallocated variable"
            );
        }
        self.clauses.push(c);
    }

    /// Adds the unit clause `l`.
    pub fn add_unit(&mut self, l: Lit) {
        self.add_clause(vec![l]);
    }

    /// Adds clauses asserting `out ↔ a ∧ b` (Tseitin AND gate).
    pub fn add_and_gate(&mut self, out: Lit, a: Lit, b: Lit) {
        self.add_clause(vec![!out, a]);
        self.add_clause(vec![!out, b]);
        self.add_clause(vec![out, !a, !b]);
    }

    /// Adds clauses asserting `out ↔ a ∨ b` (Tseitin OR gate).
    pub fn add_or_gate(&mut self, out: Lit, a: Lit, b: Lit) {
        self.add_clause(vec![out, !a]);
        self.add_clause(vec![out, !b]);
        self.add_clause(vec![!out, a, b]);
    }

    /// Adds clauses asserting `out ↔ (l_1 ∧ ... ∧ l_k)`.
    ///
    /// For `k = 0` the conjunction is true, so `out` is asserted.
    pub fn add_and_gate_n(&mut self, out: Lit, lits: &[Lit]) {
        for &l in lits {
            self.add_clause(vec![!out, l]);
        }
        let mut big: Clause = lits.iter().map(|&l| !l).collect();
        big.push(out);
        self.add_clause(big);
    }

    /// Adds clauses asserting `out ↔ (l_1 ∨ ... ∨ l_k)`.
    ///
    /// For `k = 0` the disjunction is false, so `¬out` is asserted.
    pub fn add_or_gate_n(&mut self, out: Lit, lits: &[Lit]) {
        for &l in lits {
            self.add_clause(vec![out, !l]);
        }
        let mut big: Clause = lits.to_vec();
        big.push(!out);
        self.add_clause(big);
    }

    /// Adds clauses asserting `a ↔ b`.
    pub fn add_iff(&mut self, a: Lit, b: Lit) {
        self.add_clause(vec![!a, b]);
        self.add_clause(vec![a, !b]);
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cnf({} vars, {} clauses)",
            self.num_vars,
            self.clauses.len()
        )?;
        for c in &self.clauses {
            let parts: Vec<String> = c.iter().map(Lit::to_string).collect();
            writeln!(f, "  {}", parts.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(3);
        assert_eq!(v.pos().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!(!v.pos()), v.pos());
        assert_eq!(v.pos().index(), 6);
        assert_eq!(v.neg().index(), 7);
    }

    #[test]
    fn literal_eval() {
        let a = Var(0);
        assert!(a.pos().eval(&[true]));
        assert!(!a.pos().eval(&[false]));
        assert!(a.neg().eval(&[false]));
    }

    #[test]
    fn build_and_eval() {
        let mut f = Cnf::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause(vec![a.pos(), b.pos()]);
        f.add_clause(vec![a.neg(), b.neg()]);
        assert!(f.eval(&[true, false]));
        assert!(f.eval(&[false, true]));
        assert!(!f.eval(&[true, true]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_var_panics() {
        let mut f = Cnf::new();
        f.add_clause(vec![Var(0).pos()]);
    }

    #[test]
    fn and_gate_truth_table() {
        let mut f = Cnf::new();
        let (o, a, b) = (f.new_var(), f.new_var(), f.new_var());
        f.add_and_gate(o.pos(), a.pos(), b.pos());
        for oa in [false, true] {
            for va in [false, true] {
                for vb in [false, true] {
                    let asg = [oa, va, vb];
                    assert_eq!(f.eval(&asg), oa == (va && vb), "{asg:?}");
                }
            }
        }
    }

    #[test]
    fn or_gate_truth_table() {
        let mut f = Cnf::new();
        let (o, a, b) = (f.new_var(), f.new_var(), f.new_var());
        f.add_or_gate(o.pos(), a.pos(), b.pos());
        for oa in [false, true] {
            for va in [false, true] {
                for vb in [false, true] {
                    let asg = [oa, va, vb];
                    assert_eq!(f.eval(&asg), oa == (va || vb), "{asg:?}");
                }
            }
        }
    }

    #[test]
    fn nary_gates_empty_cases() {
        let mut f = Cnf::new();
        let o = f.new_var();
        f.add_and_gate_n(o.pos(), &[]); // out ↔ true
        assert!(f.eval(&[true]));
        assert!(!f.eval(&[false]));

        let mut g = Cnf::new();
        let o = g.new_var();
        g.add_or_gate_n(o.pos(), &[]); // out ↔ false
        assert!(g.eval(&[false]));
        assert!(!g.eval(&[true]));
    }

    #[test]
    fn nary_gates_three_inputs() {
        let mut f = Cnf::new();
        let o = f.new_var();
        let xs = f.new_vars(3);
        let lits: Vec<Lit> = xs.iter().map(|v| v.pos()).collect();
        f.add_and_gate_n(o.pos(), &lits);
        for bits in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let expected = asg[0] == (asg[1] && asg[2] && asg[3]);
            assert_eq!(f.eval(&asg), expected, "{asg:?}");
        }
    }

    #[test]
    fn iff_gate() {
        let mut f = Cnf::new();
        let (a, b) = (f.new_var(), f.new_var());
        f.add_iff(a.pos(), b.neg());
        assert!(f.eval(&[true, false]));
        assert!(f.eval(&[false, true]));
        assert!(!f.eval(&[true, true]));
    }

    #[test]
    fn display_contains_stats() {
        let mut f = Cnf::new();
        let a = f.new_var();
        f.add_unit(a.pos());
        let s = f.to_string();
        assert!(s.contains("1 vars"));
        assert!(s.contains("1 clauses"));
    }
}
