//! Model enumeration and counting with blocking clauses.
//!
//! This is the executable content of the paper's US-class analysis
//! (Theorem 2): "unique solution" questions are answered by finding a model,
//! blocking its projection, and asking for another. Projection matters: the
//! fixpoint completion encoding has Tseitin auxiliaries whose values are
//! functionally determined, so fixpoints are counted over the tuple
//! variables only.

use crate::cnf::{Cnf, Lit, Var};
use crate::solver::{SolveResult, Solver};

/// Result of a (possibly truncated) model count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountResult {
    /// Number of distinct projected models found.
    pub count: u64,
    /// Whether enumeration ran to exhaustion (`false` = hit the limit).
    pub complete: bool,
}

/// Enumerates models projected onto `projection`, up to `limit` models.
///
/// Returns each projected model as the vector of Boolean values of the
/// projection variables, in the order given. Models that agree on the
/// projection are counted once.
pub fn enumerate_models(cnf: &Cnf, projection: &[Var], limit: u64) -> Vec<Vec<bool>> {
    let mut solver = Solver::from_cnf(cnf);
    let mut found = Vec::new();
    while (found.len() as u64) < limit {
        match solver.solve() {
            SolveResult::Unsat => break,
            SolveResult::Sat(model) => {
                let projected: Vec<bool> = projection.iter().map(|v| model[v.index()]).collect();
                // Block this projection.
                let blocking: Vec<Lit> = projection
                    .iter()
                    .zip(&projected)
                    .map(|(&v, &val)| if val { v.neg() } else { v.pos() })
                    .collect();
                found.push(projected);
                if blocking.is_empty() {
                    break; // empty projection: one "model" at most
                }
                if !solver.add_clause(&blocking) {
                    break;
                }
            }
        }
    }
    found
}

/// Counts models projected onto `projection`, stopping after `limit`.
pub fn count_models(cnf: &Cnf, projection: &[Var], limit: u64) -> CountResult {
    let mut solver = Solver::from_cnf(cnf);
    let mut count = 0u64;
    loop {
        if count >= limit {
            return CountResult {
                count,
                complete: false,
            };
        }
        match solver.solve() {
            SolveResult::Unsat => {
                return CountResult {
                    count,
                    complete: true,
                }
            }
            SolveResult::Sat(model) => {
                count += 1;
                let blocking: Vec<Lit> = projection
                    .iter()
                    .map(|&v| if model[v.index()] { v.neg() } else { v.pos() })
                    .collect();
                if blocking.is_empty() || !solver.add_clause(&blocking) {
                    return CountResult {
                        count,
                        complete: true,
                    };
                }
            }
        }
    }
}

/// Decides whether the formula has exactly one model on the projection —
/// the US-class predicate of Theorem 2.
pub fn has_unique_model(cnf: &Cnf, projection: &[Var]) -> bool {
    let r = count_models(cnf, projection, 2);
    r.count == 1 && r.complete
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::brute_force_count;
    use crate::gen::random_ksat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_vars(cnf: &Cnf) -> Vec<Var> {
        (0..cnf.num_vars() as u32).map(Var).collect()
    }

    #[test]
    fn count_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..25 {
            let cnf = random_ksat(7, 22, 3, &mut rng);
            let expected = brute_force_count(&cnf);
            let got = count_models(&cnf, &all_vars(&cnf), 1 << 12);
            assert!(got.complete);
            assert_eq!(got.count, expected, "trial {trial}");
        }
    }

    #[test]
    fn enumerate_returns_distinct_valid_models() {
        let mut rng = StdRng::seed_from_u64(8);
        let cnf = random_ksat(6, 15, 3, &mut rng);
        let models = enumerate_models(&cnf, &all_vars(&cnf), 1 << 10);
        let set: std::collections::HashSet<_> = models.iter().cloned().collect();
        assert_eq!(set.len(), models.len(), "duplicates returned");
        for m in &models {
            assert!(cnf.eval(m));
        }
        assert_eq!(models.len() as u64, brute_force_count(&cnf));
    }

    #[test]
    fn projection_collapses_models() {
        // f = (a ∨ b): 3 total models, but projected onto {a} only 2
        // distinct values.
        let mut f = Cnf::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause(vec![a.pos(), b.pos()]);
        let onto_a = enumerate_models(&f, &[a], 100);
        assert_eq!(onto_a.len(), 2);
        let all = enumerate_models(&f, &[a, b], 100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn unique_model_detection() {
        // a ∧ b: unique model.
        let mut f = Cnf::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_unit(a.pos());
        f.add_unit(b.pos());
        assert!(has_unique_model(&f, &[a, b]));
        // a ∨ b: three models.
        let mut g = Cnf::new();
        let a = g.new_var();
        let b = g.new_var();
        g.add_clause(vec![a.pos(), b.pos()]);
        assert!(!has_unique_model(&g, &[a, b]));
        // UNSAT: zero models.
        let mut h = Cnf::new();
        let a = h.new_var();
        h.add_unit(a.pos());
        h.add_unit(a.neg());
        assert!(!has_unique_model(&h, &[a]));
    }

    #[test]
    fn limit_truncates() {
        let mut f = Cnf::new();
        let vs = f.new_vars(4); // free: 16 models
        let r = count_models(&f, &vs, 5);
        assert_eq!(r.count, 5);
        assert!(!r.complete);
    }

    #[test]
    fn empty_projection() {
        let mut f = Cnf::new();
        f.new_vars(3);
        let models = enumerate_models(&f, &[], 10);
        assert_eq!(models.len(), 1); // one (empty) projected model
    }
}
