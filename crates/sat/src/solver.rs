//! A CDCL SAT solver: two-watched literals, VSIDS-style variable activity,
//! first-UIP conflict learning, non-chronological backjumping, Luby
//! restarts, phase saving, and incremental solving under assumptions.
//!
//! The design follows MiniSat's architecture. Assumption solving is what the
//! FONP least-fixpoint algorithm (paper Theorem 3) uses: one "is tuple `t`
//! in every fixpoint?" query per tuple becomes one `solve_with_assumptions`
//! call on the shared completion encoding.

use crate::cnf::{Cnf, Lit, Var};

/// Three-valued assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// Result of a solve call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; the model assigns every allocated variable.
    Sat(Vec<bool>),
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SolveResult {
    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if SAT.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

/// Solver statistics (exposed for the experiment tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of solve calls.
    pub solves: u64,
}

const VAR_DECAY: f64 = 0.95;
const RESTART_BASE: u64 = 100;
const ACTIVITY_RESCALE: f64 = 1e100;

/// The CDCL solver. Clauses may be added between solve calls (incremental
/// use); learnt clauses are retained across calls.
#[derive(Debug, Clone)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// `watches[l.index()]`: clauses in which literal `l` is watched
    /// (visited when `l` becomes false).
    watches: Vec<Vec<usize>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    ok: bool,
    /// Statistics.
    pub stats: Stats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            ok: true,
            stats: Stats::default(),
        }
    }

    /// Creates a solver loaded with a formula.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new();
        s.reserve_vars(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause(c);
        }
        s
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(u32::try_from(self.num_vars).expect("too many variables"));
        self.num_vars += 1;
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Whether the clause set is already known unsatisfiable at level 0.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause; returns `false` if the solver became trivially UNSAT.
    ///
    /// Must be called at decision level 0 (i.e. between solve calls).
    /// Tautologies and duplicate literals are simplified away; literals
    /// false at level 0 are removed.
    ///
    /// # Panics
    /// Panics if a literal references an unallocated variable, or if called
    /// mid-search.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause mid-search");
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &l in &sorted {
            assert!(l.var().index() < self.num_vars, "unallocated variable");
            match self.value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => continue,   // drop falsified literal
                LBool::Undef => {
                    if c.contains(&!l) {
                        return true; // tautology
                    }
                    c.push(l);
                }
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(c);
                true
            }
        }
    }

    fn attach_clause(&mut self, c: Vec<Lit>) -> usize {
        debug_assert!(c.len() >= 2);
        let idx = self.clauses.len();
        self.watches[c[0].index()].push(idx);
        self.watches[c[1].index()].push(idx);
        self.clauses.push(c);
        idx
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<usize>) {
        let v = l.var().index();
        debug_assert_eq!(self.assign[v], LBool::Undef);
        self.assign[v] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Take the watch list for the literal that just became false.
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                // Make sure the false literal is at position 1.
                if self.clauses[cref][0] == false_lit {
                    self.clauses[cref].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref][1], false_lit);
                let first = self.clauses[cref][0];
                if self.value(first) == LBool::True {
                    i += 1;
                    continue; // clause already satisfied; keep watch
                }
                // Look for a new literal to watch.
                let mut found = false;
                for k in 2..self.clauses[cref].len() {
                    if self.value(self.clauses[cref][k]) != LBool::False {
                        self.clauses[cref].swap(1, k);
                        let new_watch = self.clauses[cref][1];
                        self.watches[new_watch.index()].push(cref);
                        found = true;
                        break;
                    }
                }
                if found {
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                if self.value(first) == LBool::False {
                    // Conflict: restore remaining watches and bail out.
                    self.watches[false_lit.index()].append(&mut ws);
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.index()].extend(ws);
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();

        loop {
            let start = usize::from(p.is_some()); // skip the asserting literal itself
            for k in start..self.clauses[confl].len() {
                let q = self.clauses[confl][k];
                let v = q.var().index();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            loop {
                trail_idx -= 1;
                if seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[trail_idx];
            let v = lit.var().index();
            seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            confl = self.reason[v].expect("non-decision literal must have a reason");
            p = Some(lit);
        }

        let asserting = !p.expect("conflict analysis found a UIP");
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(asserting);
        clause.extend(learnt);

        // Backjump level: highest level among the non-asserting literals.
        let bt = clause[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level to position 1 (watch invariant).
        if clause.len() > 1 {
            let pos = clause[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == bt)
                .expect("some literal has the max level")
                + 1;
            clause.swap(1, pos);
        }
        (clause, bt)
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.phase[v] = self.assign[v] == LBool::True;
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<usize> {
        // Linear VSIDS scan: ample for the workloads in this reproduction.
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars {
            if self.assign[v] == LBool::Undef
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are placed as the first decisions; if they are jointly
    /// inconsistent with the clauses, returns [`SolveResult::Unsat`] without
    /// mutating the clause set (learnt clauses are kept; they are logical
    /// consequences regardless of assumptions).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        if !self.ok {
            return SolveResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_number = 0u32;
        let mut restart_limit = RESTART_BASE * luby(restart_number);

        let result = loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.attach_clause(learnt.clone());
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                self.decay_activities();
            } else {
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    restart_number += 1;
                    restart_limit = RESTART_BASE * luby(restart_number);
                    conflicts_since_restart = 0;
                    self.cancel_until(0);
                    continue;
                }
                // Place pending assumptions as decisions.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value(a) {
                        LBool::True => {
                            // Already satisfied: open an empty level so the
                            // remaining assumptions keep their positions.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => break SolveResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                // Regular decision.
                match self.pick_branch_var() {
                    None => {
                        let model: Vec<bool> =
                            self.assign.iter().map(|&a| a == LBool::True).collect();
                        break SolveResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(Var(v as u32), self.phase[v]);
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        };
        self.cancel_until(0);
        result
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
/// (0-based index).
fn luby(i: u32) -> u64 {
    let mut i = u64::from(i) + 1; // work 1-based
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_ksat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lit(v: &[Var], i: usize, pos: bool) -> Lit {
        Lit::new(v[i], pos)
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.pos()]));
        assert!(s.solve().is_sat());
        assert!(!s.add_clause(&[v.neg()]));
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        s.new_var();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // (a) ∧ (¬a ∨ b) ∧ (¬b ∨ c) forces a=b=c=true.
        let mut s = Solver::new();
        let vs: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(&vs, 0, true)]);
        s.add_clause(&[lit(&vs, 0, false), lit(&vs, 1, true)]);
        s.add_clause(&[lit(&vs, 1, false), lit(&vs, 2, true)]);
        match s.solve() {
            SolveResult::Sat(m) => assert_eq!(&m[..3], &[true, true, true]),
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 is unsatisfiable.
        let mut s = Solver::new();
        let v: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[a.pos(), b.pos()]);
            s.add_clause(&[a.neg(), b.neg()]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        xor1(&mut s, v[0], v[2]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_formula() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..30 {
            let cnf = random_ksat(12, 40, 3, &mut rng);
            let mut s = Solver::from_cnf(&cnf);
            if let SolveResult::Sat(m) = s.solve() {
                assert!(cnf.eval(&m), "trial {trial}: returned model is invalid");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..50 {
            let cnf = random_ksat(8, 34, 3, &mut rng);
            let brute = crate::dpll::brute_force_sat(&cnf).is_some();
            let cdcl = Solver::from_cnf(&cnf).solve().is_sat();
            assert_eq!(cdcl, brute, "trial {trial} diverged");
        }
    }

    #[test]
    fn pigeonhole_unsat() {
        // PHP(4 pigeons, 3 holes): classic hard UNSAT instance.
        let cnf = crate::gen::pigeonhole(3);
        assert!(!Solver::from_cnf(&cnf).solve().is_sat());
    }

    #[test]
    fn assumptions_flip_results() {
        // (a ∨ b): SAT; under assumptions ¬a, ¬b: UNSAT; clauses unchanged.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        assert!(s.solve().is_sat());
        assert!(!s.solve_with_assumptions(&[a.neg(), b.neg()]).is_sat());
        // Still SAT without assumptions afterwards.
        assert!(s.solve().is_sat());
        // Under a single assumption the other variable is forced.
        match s.solve_with_assumptions(&[a.neg()]) {
            SolveResult::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn assumptions_with_already_true_literal() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos()]); // a forced at level 0
        let r = s.solve_with_assumptions(&[a.pos(), b.pos()]);
        match r {
            SolveResult::Sat(m) => assert!(m[0] && m[1]),
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        assert!(s.solve().is_sat());
        s.add_clause(&[v[2].pos(), v[3].pos()]);
        assert!(s.solve().is_sat());
        s.add_clause(&[v[0].neg()]);
        s.add_clause(&[v[1].neg()]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.pos(), a.pos()])); // dedup to unit
        assert!(s.add_clause(&[a.pos(), a.neg()])); // tautology: ignored
        match s.solve() {
            SolveResult::Sat(m) => assert!(m[0]),
            SolveResult::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut rng = StdRng::seed_from_u64(3);
        let cnf = random_ksat(15, 64, 3, &mut rng);
        let mut s = Solver::from_cnf(&cnf);
        let _ = s.solve();
        assert!(s.stats.solves == 1);
        assert!(s.stats.propagations > 0);
    }

    #[test]
    fn unsat_under_assumption_of_forced_opposite() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.pos()]);
        assert!(!s.solve_with_assumptions(&[a.neg()]).is_sat());
        assert!(s.is_ok(), "global state must remain consistent");
        assert!(s.solve().is_sat());
    }
}
