//! DIMACS CNF I/O.
//!
//! Standard interchange format so instances can be moved in and out of the
//! reproduction (e.g. to cross-check against an external solver).

use crate::cnf::{Cnf, Lit, Var};
use std::fmt;

/// DIMACS parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// Message.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text.
///
/// Accepts `c` comment lines, one `p cnf <vars> <clauses>` header, and
/// 0-terminated clause lines (clauses may span lines).
///
/// # Errors
/// Malformed headers, literals out of range, or trailing unterminated
/// clauses.
pub fn parse_dimacs(src: &str) -> Result<Cnf, DimacsError> {
    let mut cnf: Option<Cnf> = None;
    let mut declared_vars = 0i64;
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, line) in src.lines().enumerate() {
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if cnf.is_some() {
                return Err(DimacsError {
                    message: "duplicate problem line".into(),
                    line: lineno,
                });
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    message: format!("malformed problem line `{line}`"),
                    line: lineno,
                });
            }
            declared_vars = parts[1].parse().map_err(|_| DimacsError {
                message: "bad variable count".into(),
                line: lineno,
            })?;
            let _declared_clauses: i64 = parts[2].parse().map_err(|_| DimacsError {
                message: "bad clause count".into(),
                line: lineno,
            })?;
            cnf = Some(Cnf::with_vars(declared_vars as usize));
            continue;
        }
        let Some(ref mut f) = cnf else {
            return Err(DimacsError {
                message: "clause before problem line".into(),
                line: lineno,
            });
        };
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| DimacsError {
                message: format!("bad literal `{tok}`"),
                line: lineno,
            })?;
            if n == 0 {
                f.add_clause(std::mem::take(&mut current));
            } else {
                let var = n.unsigned_abs() - 1;
                if var as i64 >= declared_vars {
                    return Err(DimacsError {
                        message: format!("literal {n} out of declared range"),
                        line: lineno,
                    });
                }
                current.push(Lit::new(Var(var as u32), n > 0));
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError {
            message: "unterminated final clause (missing 0)".into(),
            line: src.lines().count(),
        });
    }
    cnf.ok_or(DimacsError {
        message: "missing problem line".into(),
        line: 0,
    })
}

/// Serializes a formula to DIMACS CNF text.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for c in cnf.clauses() {
        for l in c {
            let n = i64::from(l.var().0) + 1;
            let signed = if l.is_positive() { n } else { -n };
            out.push_str(&format!("{signed} "));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[0], vec![Var(0).pos(), Var(1).neg()]);
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = parse_dimacs("p cnf 2 1\n1\n-2\n0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn roundtrip() {
        let src = "p cnf 4 3\n1 -2 0\n3 4 0\n-1 -3 -4 0\n";
        let cnf = parse_dimacs(src).unwrap();
        let printed = to_dimacs(&cnf);
        let reparsed = parse_dimacs(&printed).unwrap();
        assert_eq!(cnf, reparsed);
    }

    #[test]
    fn error_cases() {
        assert!(parse_dimacs("1 2 0\n").is_err()); // clause before header
        assert!(parse_dimacs("p cnf 2 1\n5 0\n").is_err()); // out of range
        assert!(parse_dimacs("p cnf 2 1\n1 2\n").is_err()); // unterminated
        assert!(parse_dimacs("p wrong 2 1\n").is_err()); // bad header
        assert!(parse_dimacs("").is_err()); // no header
        assert!(parse_dimacs("p cnf 1 1\np cnf 1 1\n").is_err()); // dup header
        assert!(parse_dimacs("p cnf 1 1\nxyz 0\n").is_err()); // bad literal
    }

    #[test]
    fn empty_clause_parses() {
        let cnf = parse_dimacs("p cnf 1 1\n0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert!(cnf.clauses()[0].is_empty());
    }
}
