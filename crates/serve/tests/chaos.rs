//! Chaos harness for the serving layer: every `serve-*` failpoint site
//! driven in-process, the same scenarios driven from the environment (the
//! CI per-site passes), and a real `kill -9` of the serving binary
//! mid-churn with recovery verified over the line protocol.
//!
//! The recovery oracle is the paper's determinism: each committed epoch is
//! the unique model of its EDB, so the parent can replay the acknowledged
//! command prefix into a shadow handle and demand the recovered server's
//! replies match bit for bit.

use inflog_core::graphs::DiGraph;
use inflog_core::{Database, Tuple};
use inflog_eval::materialize::{MaterializeOpts, Materialized};
use inflog_eval::EvalOptions;
use inflog_serve::{
    serve_session, Failpoints, Load, ServeError, ServeOptions, Server, SERVE_FAILPOINT_SITES,
    SITE_EPOCH_PUBLISH, SITE_QUEUE_FULL, SITE_REPLY_DROP, SITE_WRITER_CRASH,
};
use inflog_syntax::{parse_atom, parse_program};
use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet_opts() -> ServeOptions {
    ServeOptions {
        failpoints: Failpoints::none(),
        store_failpoints: inflog_store::Failpoints::none(),
        ..ServeOptions::default()
    }
}

fn edb_fact(a: u32, b: u32) -> (String, Tuple) {
    ("E".to_string(), Tuple::from_ids(&[a, b]))
}

/// The in-process chaos body for one serve site — also the target of the
/// env-driven CI passes, so the arming comes in as a parameter.
fn chaos_site(site: &str, fp: Failpoints) {
    let program = parse_program(TC).unwrap();
    let db = DiGraph::path(5).to_database("E");
    let dir = tmp_dir(&format!("chaos_{site}"));
    // Crash sites fire on the trigger-th write: ack trigger-1 writes first
    // so the scenario works for any arming (the env-driven CI pass uses 1).
    let trigger = fp.trigger().unwrap_or(1);
    let opts = ServeOptions {
        failpoints: fp,
        ..quiet_opts()
    };
    let goal = parse_atom("S(x, y)").unwrap();

    match site {
        s if s == SITE_QUEUE_FULL => {
            // Arm at trigger 1: the very first write sheds with the typed
            // Overloaded(Writer), and — one-shot — the retry commits.
            let server = Server::create(&program, &db, &dir, &opts).unwrap();
            let err = server.insert(vec![edb_fact(0, 2)]).unwrap_err();
            assert_eq!(err, ServeError::Overloaded(Load::Writer), "{site}");
            assert_eq!(server.epoch(), 0, "{site}: a shed write advanced the epoch");
            let ack = server.insert(vec![edb_fact(0, 2)]).unwrap();
            assert_eq!(ack.epoch, 1, "{site}: retry after shed");
            assert!(server.query(&goal, None).is_ok(), "{site}");
        }
        s if s == SITE_REPLY_DROP => {
            // The reply stream dies after the EPOCH header; the session
            // closes but the server keeps serving other connections.
            let server = Server::create(&program, &db, &dir, &opts).unwrap();
            let mut out = Vec::new();
            let outcome = serve_session(
                &server,
                Cursor::new("QUERY S(x, y)\nPING\n".to_string()),
                &mut out,
            )
            .unwrap();
            assert!(!outcome.shutdown, "{site}");
            let text = String::from_utf8(out).unwrap();
            assert_eq!(text, "EPOCH 0\n", "{site}: reply not torn after header");
            // A fresh "connection" sees the full reply.
            let mut out = Vec::new();
            serve_session(&server, Cursor::new("PING\n".to_string()), &mut out).unwrap();
            assert_eq!(String::from_utf8(out).unwrap(), "OK pong\n", "{site}");
            assert!(server.query(&goal, None).is_ok(), "{site}");
        }
        s if s == SITE_WRITER_CRASH => {
            // The trigger-th write kills the writer *before* the WAL
            // append. Recovery restores exactly the last ack.
            let server = Server::create(&program, &db, &dir, &opts).unwrap();
            let acked = ack_writes(&server, trigger - 1, site);
            let err = server.insert(vec![edb_fact(0, 4)]).unwrap_err();
            assert_eq!(
                err,
                ServeError::FaultInjected {
                    site: site.to_string()
                },
                "{site}"
            );
            degraded_then_recovers(&server, &dir, site, acked, acked);
        }
        s if s == SITE_EPOCH_PUBLISH => {
            // The trigger-th write is durable and applied but the writer
            // dies before the swap — the client never sees an ack, readers
            // keep the acked epoch, and recovery replays the orphan record
            // (last acked + 1).
            let server = Server::create(&program, &db, &dir, &opts).unwrap();
            let acked = ack_writes(&server, trigger - 1, site);
            let err = server.insert(vec![edb_fact(0, 4)]).unwrap_err();
            assert_eq!(
                err,
                ServeError::FaultInjected {
                    site: site.to_string()
                },
                "{site}"
            );
            degraded_then_recovers(&server, &dir, site, acked, acked + 1);
        }
        other => panic!("unregistered serve site {other:?} in chaos harness"),
    }
}

/// Commits `count` writes (distinct facts cycling over three targets) and
/// returns the last acked epoch.
fn ack_writes(server: &Server, count: u64, site: &str) -> u64 {
    for i in 1..=count {
        let ack = server
            .insert(vec![edb_fact(0, 2 + (i as u32 % 2))])
            .unwrap_or_else(|e| panic!("{site}: pre-crash write {i}: {e}"));
        assert_eq!(ack.epoch, i, "{site}");
    }
    count
}

/// After a writer death: reads keep serving the published epoch, writes
/// report the typed WriterDown (never hang), shutdown still drains — and a
/// reopen recovers `recovered` with a model that passes the determinism
/// oracle.
fn degraded_then_recovers(server: &Server, dir: &Path, site: &str, published: u64, recovered: u64) {
    let program = parse_program(TC).unwrap();
    let goal = parse_atom("S(x, y)").unwrap();
    // The writer is gone...
    assert!(!server.writer_alive(), "{site}: writer survived its crash");
    let err = server.insert(vec![edb_fact(1, 3)]).unwrap_err();
    assert_eq!(err, ServeError::WriterDown, "{site}");
    // ...but readers never noticed: the published epoch is the last ack.
    assert_eq!(server.epoch(), published, "{site}: published epoch moved");
    let reply = server.query(&goal, None).unwrap();
    assert_eq!(reply.epoch.number(), published, "{site}");
    assert!(
        reply
            .epoch
            .matches_recompute(&EvalOptions::default())
            .unwrap(),
        "{site}: degraded epoch fails the determinism oracle"
    );
    server.shutdown();

    let reopened = Server::open(&program, dir, &quiet_opts()).unwrap();
    assert_eq!(reopened.epoch(), recovered, "{site}: wrong recovered epoch");
    assert!(
        reopened
            .pin()
            .matches_recompute(&EvalOptions::default())
            .unwrap(),
        "{site}: recovered epoch fails the determinism oracle"
    );
    // The recovered server is immediately writable again.
    let ack = reopened.insert(vec![edb_fact(2, 0)]).unwrap();
    assert_eq!(ack.epoch, recovered + 1, "{site}");
}

#[test]
fn chaos_sweep_every_serve_site() {
    for site in SERVE_FAILPOINT_SITES {
        let trigger = match *site {
            s if s == SITE_WRITER_CRASH || s == SITE_EPOCH_PUBLISH => 3,
            _ => 1,
        };
        chaos_site(site, Failpoints::armed(site, trigger));
    }
}

/// Env-driven form for CI: `INFLOG_FAILPOINT=<serve site>[:<n>] cargo test
/// -p inflog-serve env_driven_serve_site -- --ignored` proves the env
/// plumbing end to end for each site.
#[test]
#[ignore]
fn env_driven_serve_site() {
    let fp = Failpoints::from_env();
    assert!(
        fp.is_armed(),
        "run with INFLOG_FAILPOINT set to a serve site"
    );
    let site = fp.site().unwrap().to_string();
    chaos_site(&site, fp);
}

// ---------------------------------------------------------------------------
// kill -9 the serving binary mid-churn over TCP, restart, verify recovery
// over the line protocol.
// ---------------------------------------------------------------------------

struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        TcpClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }
}

fn spawn_serve(dir: &Path, program: &Path, create: bool, facts: Option<&Path>) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
    cmd.arg("--store")
        .arg(dir)
        .arg("--program")
        .arg(program)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .env_remove("INFLOG_FAILPOINT");
    if create {
        cmd.arg("--create");
        if let Some(facts) = facts {
            cmd.arg("--facts").arg(facts);
        }
    }
    let mut child = cmd.spawn().unwrap();
    let mut first = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut first)
        .unwrap();
    let addr = first
        .trim()
        .strip_prefix("inflog-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {first:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn kill_dash_nine_mid_churn_recovers_last_acked_epoch() {
    let dir = tmp_dir("kill9");
    let scratch = tmp_dir("kill9_files");
    std::fs::create_dir_all(&scratch).unwrap();
    let program_path = scratch.join("tc.dl");
    std::fs::write(&program_path, TC).unwrap();

    // The facts file fixes the universe interning order, so the parent's
    // shadow database (built through the same lines) is id-compatible.
    let fact_lines: Vec<String> = (0..5)
        .map(|i| format!("E('v{}', 'v{}').", i, (i + 1) % 5))
        .collect();
    let facts_path = scratch.join("edges.facts");
    std::fs::write(&facts_path, fact_lines.join("\n")).unwrap();
    let mut shadow_db = Database::new();
    for i in 0..5u32 {
        shadow_db
            .insert_named_fact("E", &[&format!("v{i}"), &format!("v{}", (i + 1) % 5)])
            .unwrap();
    }
    let n = shadow_db.universe_size() as u32;

    let (mut child, addr) = spawn_serve(&dir, &program_path, true, Some(&facts_path));
    let mut client = TcpClient::connect(&addr);
    client.send("PING");
    assert_eq!(client.recv(), "OK pong");

    // Churn: deterministic flips, recording each command and its ack. A
    // second connection reads concurrently to keep the epoch cell busy.
    let reader_addr = addr.clone();
    let reader = std::thread::spawn(move || {
        // Tolerates the SIGKILL landing mid-reply (empty line / io error);
        // until then every reply must be single-epoch well-formed.
        let stream = match TcpStream::connect(&reader_addr) {
            Ok(s) => s,
            Err(_) => return,
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        'queries: for _ in 0..40 {
            if writeln!(writer, "QUERY S('v0', y)")
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
            loop {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {}
                }
                let line = line.trim_end();
                if line.starts_with("OK ") {
                    continue 'queries;
                }
                assert!(
                    line.starts_with("EPOCH ")
                        || line.starts_with("TRUE ")
                        || line.starts_with("UNDEF "),
                    "malformed reply line {line:?}"
                );
            }
        }
    });

    let mut present: std::collections::BTreeSet<(u32, u32)> =
        (0..5).map(|i| (i, (i + 1) % 5)).collect();
    let mut commands: Vec<(bool, u32, u32)> = Vec::new();
    let mut last_acked = 0u64;
    const STEPS: u64 = 20;
    const KILL_AFTER: u64 = 13;
    for i in 1..=STEPS {
        let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        x ^= x >> 31;
        let (a, b) = ((x as u32) % n, ((x >> 32) as u32) % n);
        let insert = !present.contains(&(a, b));
        let verb = if insert { "INSERT" } else { "RETRACT" };
        client.send(&format!("{verb} E('v{a}', 'v{b}')"));
        let reply = client.recv();
        assert!(
            reply.starts_with(&format!("OK epoch={i} ")),
            "churn step {i}: {reply}"
        );
        commands.push((insert, a, b));
        if insert {
            present.insert((a, b));
        } else {
            present.remove(&(a, b));
        }
        last_acked = i;
        if i == KILL_AFTER {
            break;
        }
    }
    // SIGKILL: no drain, no flush, no goodbye.
    child.kill().unwrap();
    child.wait().unwrap();
    reader.join().unwrap();

    // Restart over the same directory and interrogate it over the protocol.
    let (mut child, addr) = spawn_serve(&dir, &program_path, false, None);
    let mut client = TcpClient::connect(&addr);
    client.send("EPOCH");
    let reply = client.recv();
    let recovered: u64 = reply
        .strip_prefix("OK epoch=")
        .unwrap_or_else(|| panic!("{reply}"))
        .parse()
        .unwrap();
    assert!(
        recovered == last_acked || recovered == last_acked + 1,
        "recovered epoch {recovered} vs last acked {last_acked}"
    );
    // With the kill landing between commits (not inside an append), the
    // recovery is exact.
    assert_eq!(recovered, last_acked, "phantom record after clean kill");

    // Replay the acked prefix into a shadow handle and compare the full
    // S-relation reply line by line.
    let program = parse_program(TC).unwrap();
    let mut shadow = Materialized::new(&program, &shadow_db, &MaterializeOpts::default()).unwrap();
    for &(insert, a, b) in commands.iter().take(recovered as usize) {
        let fact = [("E", Tuple::from_ids(&[a, b]))];
        if insert {
            shadow.insert(&fact).unwrap();
        } else {
            shadow.retract(&fact).unwrap();
        }
    }
    let epoch = shadow.publish(recovered).unwrap();
    let expected = epoch.select(&parse_atom("S(x, y)").unwrap(), None).unwrap();
    let universe = epoch.database().universe();

    client.send("QUERY S(x, y)");
    assert_eq!(client.recv(), format!("EPOCH {recovered}"));
    for t in &expected.tuples {
        assert_eq!(
            client.recv(),
            format!("TRUE {}", inflog_serve::render_tuple(universe, "S", t)),
            "recovered reply diverged from the acked-prefix replay"
        );
    }
    assert_eq!(
        client.recv(),
        format!("OK true={} undef=0", expected.tuples.len())
    );

    // And the recovered server still takes writes and shuts down cleanly.
    client.send("INSERT E('v0', 'v2')");
    let reply = client.recv();
    assert!(
        reply.starts_with(&format!("OK epoch={}", recovered + 1)),
        "{reply}"
    );
    client.send("SHUTDOWN");
    assert_eq!(client.recv(), "OK draining");
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited uncleanly after SHUTDOWN");
}

/// The binary's crash window end to end: `INFLOG_SERVE_ABORT=1` plus an
/// armed `serve-epoch-publish` makes the process die between WAL ack and
/// epoch swap; restart must recover last-acked + 1 (durable, unacked).
#[test]
fn abort_inside_publish_window_recovers_plus_one() {
    let dir = tmp_dir("abort_publish");
    let scratch = tmp_dir("abort_publish_files");
    std::fs::create_dir_all(&scratch).unwrap();
    let program_path = scratch.join("tc.dl");
    std::fs::write(&program_path, TC).unwrap();
    let facts_path = scratch.join("edges.facts");
    std::fs::write(&facts_path, "E('v0', 'v1').\nE('v1', 'v2').\n").unwrap();

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
    cmd.arg("--store")
        .arg(&dir)
        .arg("--program")
        .arg(&program_path)
        .arg("--create")
        .arg("--facts")
        .arg(&facts_path)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .env("INFLOG_SERVE_ABORT", "1")
        .env("INFLOG_FAILPOINT", format!("{SITE_EPOCH_PUBLISH}:2"));
    let mut child = cmd.spawn().unwrap();
    let mut banner = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .trim()
        .strip_prefix("inflog-serve listening on ")
        .unwrap()
        .to_string();

    let mut client = TcpClient::connect(&addr);
    client.send("INSERT E('v2', 'v0')");
    let reply = client.recv();
    assert!(reply.starts_with("OK epoch=1 "), "{reply}");
    // The second write aborts the whole process inside the publish window:
    // durable, never acked, connection drops without a reply line.
    client.send("INSERT E('v0', 'v2')");
    assert_eq!(
        client.recv(),
        "",
        "expected a dropped connection, not a reply"
    );
    let status = child.wait().unwrap();
    assert!(!status.success(), "the abort failpoint did not kill serve");

    let program = parse_program(TC).unwrap();
    let recovered = Server::open(&program, &dir, &quiet_opts()).unwrap();
    assert_eq!(
        recovered.epoch(),
        2,
        "the durable-but-unacked record must replay"
    );
    assert!(recovered
        .pin()
        .matches_recompute(&EvalOptions::default())
        .unwrap());
}
