//! Protocol sessions end to end over in-memory transports: every request
//! kind, the reply grammar, typed error rendering, per-connection
//! deadlines, and graceful shutdown.

use inflog_core::graphs::DiGraph;
use inflog_eval::materialize::Engine;
use inflog_serve::{serve_session, ServeOptions, Server};
use inflog_syntax::parse_atom;
use std::io::Cursor;
use std::path::PathBuf;
use std::time::Duration;

const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet_opts() -> ServeOptions {
    // Explicitly inert failpoints: these tests must not pick up an
    // `INFLOG_FAILPOINT` arming from a CI chaos pass.
    ServeOptions {
        failpoints: inflog_serve::Failpoints::none(),
        store_failpoints: inflog_store::Failpoints::none(),
        ..ServeOptions::default()
    }
}

fn server(name: &str, opts: &ServeOptions) -> Server {
    let program = inflog_syntax::parse_program(TC).unwrap();
    let db = DiGraph::path(4).to_database("E");
    Server::create(&program, &db, &tmp_dir(name), opts).unwrap()
}

fn run(server: &Server, script: &str) -> (Vec<String>, bool) {
    let mut out = Vec::new();
    let outcome = serve_session(server, Cursor::new(script.to_string()), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    (text.lines().map(str::to_string).collect(), outcome.shutdown)
}

#[test]
fn scripted_session_covers_the_protocol() {
    let server = server("session_full", &quiet_opts());
    let (lines, shutdown) = run(
        &server,
        "# a comment and a blank line are ignored\n\
         \n\
         PING\n\
         EPOCH\n\
         QUERY S('v0', y)\n\
         INSERT E('v3', 'v0')\n\
         EPOCH\n\
         QUERY S('v3', 'v1')\n\
         RETRACT E('v3', 'v0')\n\
         QUERY S('v3', 'v1')\n",
    );
    assert!(!shutdown);
    assert_eq!(
        lines,
        vec![
            "OK pong",
            "OK epoch=0",
            // Path v0->v1->v2->v3: S('v0', y) = {v1, v2, v3}, sorted.
            "EPOCH 0",
            "TRUE S(v0, v1)",
            "TRUE S(v0, v2)",
            "TRUE S(v0, v3)",
            "OK true=3 undef=0",
            "OK epoch=1 changed=1",
            "OK epoch=1",
            // The inserted back-edge closes the cycle: v3 reaches v1.
            "EPOCH 1",
            "TRUE S(v3, v1)",
            "OK true=1 undef=0",
            "OK epoch=2 changed=1",
            "EPOCH 2",
            "OK true=0 undef=0",
        ]
    );
}

#[test]
fn errors_are_rendered_not_fatal() {
    let server = server("session_errors", &quiet_opts());
    let (lines, shutdown) = run(
        &server,
        "FROBNICATE\n\
         QUERY S(x)\n\
         QUERY Nope(x)\n\
         QUERY S('nobody', y)\n\
         INSERT E(x, 'v0')\n\
         INSERT E('nobody', 'v0')\n\
         PING\n",
    );
    assert!(!shutdown);
    assert!(lines[0].starts_with("ERR protocol: unknown request"));
    assert!(lines[1].starts_with("ERR eval: "), "{}", lines[1]);
    assert!(lines[2].starts_with("ERR eval: "), "{}", lines[2]);
    assert!(lines[3].starts_with("ERR eval: "), "{}", lines[3]);
    assert!(lines[4].starts_with("ERR protocol: write atoms must be ground"));
    assert!(lines[5].starts_with("ERR protocol: unknown constant"));
    // The session survived six failures in a row.
    assert_eq!(lines[6], "OK pong");
}

#[test]
fn per_connection_deadline_overrides_the_default() {
    // A zero default deadline trips every query...
    let opts = ServeOptions {
        query_deadline: Some(Duration::ZERO),
        ..quiet_opts()
    };
    let server = server("session_deadline", &opts);
    let (lines, _) = run(
        &server,
        "QUERY S(x, y)\n\
         DEADLINE 60000\n\
         QUERY S('v0', 'v1')\n\
         DEADLINE off\n\
         QUERY S('v0', 'v1')\n",
    );
    assert!(
        lines[0].starts_with("ERR deadline: "),
        "default deadline did not trip: {}",
        lines[0]
    );
    // ...a generous per-connection override lets the query through...
    assert_eq!(lines[1], "OK deadline=60000");
    assert_eq!(lines[2], "EPOCH 0");
    assert_eq!(lines[3], "TRUE S(v0, v1)");
    assert_eq!(lines[4], "OK true=1 undef=0");
    // ...and `off` clears the deadline entirely.
    assert_eq!(lines[5], "OK deadline=off");
    assert_eq!(lines[6], "EPOCH 0");
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let server = server("session_shutdown", &quiet_opts());
    let (lines, shutdown) = run(&server, "INSERT E('v3', 'v0')\nSHUTDOWN\n");
    assert_eq!(lines, vec!["OK epoch=1 changed=1", "OK draining"]);
    assert!(shutdown, "SHUTDOWN must propagate to the accept loop");
    server.shutdown();
    assert!(server.is_draining());
    // Post-drain requests get typed refusals, not hangs.
    let goal = parse_atom("S(x, y)").unwrap();
    let e = server.query(&goal, None).unwrap_err();
    assert_eq!(e.code(), "shutting-down");
    let e = server
        .insert(vec![(
            "E".to_string(),
            inflog_core::Tuple::from_ids(&[0, 2]),
        )])
        .unwrap_err();
    assert_eq!(e.code(), "shutting-down");
}

#[test]
fn engine_flagged_server_serves_three_valued_answers() {
    // Win over a 2-cycle: both positions undefined in the well-founded
    // model; UNDEF lines carry them.
    let program = inflog_syntax::parse_program("Win(x) :- Move(x, y), !Win(y).").unwrap();
    let db = DiGraph::cycle(2).to_database("Move");
    let opts = ServeOptions {
        engine: Engine::WellFounded,
        ..quiet_opts()
    };
    let server = Server::create(&program, &db, &tmp_dir("session_wf"), &opts).unwrap();
    let (lines, _) = run(&server, "QUERY Win(x)\n");
    assert_eq!(
        lines,
        vec![
            "EPOCH 0",
            "UNDEF Win(v0)",
            "UNDEF Win(v1)",
            "OK true=0 undef=2",
        ]
    );
}
