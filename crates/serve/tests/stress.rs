//! Concurrent reader/writer stress: snapshot isolation under churn.
//!
//! At 2, 4, and 8 reader threads, readers hammer a [`Server`] while the
//! main thread churns writes through the durable path. Every reply is
//! checked against the strongest oracle this workspace has: the paper's
//! semantics are *deterministic* functions of the EDB, so a reply is
//! consistent iff it equals a **from-scratch evaluation over the pinned
//! epoch's own database**. A torn publish — any mix of two epochs — would
//! make that recompute diverge.
//!
//! The same test body runs in the CI matrix's forced-parallel
//! (`INFLOG_THREADS=4 INFLOG_PARALLEL_THRESHOLD=0`) and tree-executor
//! (`INFLOG_EXEC=tree`) re-runs, covering all three execution modes.

use inflog_core::graphs::DiGraph;
use inflog_core::Tuple;
use inflog_eval::materialize::Engine;
use inflog_eval::{EvalOptions, QueryOpts};
use inflog_serve::{ServeOptions, Server};
use inflog_syntax::parse_atom;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const TC: &str = "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y).";
const WIN: &str = "Win(x) :- Move(x, y), !Win(y).";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic churn fact for step `i` (no RNG: the xorshift keeps the
/// sequence identical across runs and execution modes).
fn churn_fact(i: u64, n: u32) -> Tuple {
    let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 29;
    let a = (x as u32) % n;
    let b = ((x >> 32) as u32) % n;
    Tuple::from_ids(&[a, b])
}

/// The stress body: `readers` threads assert per-reply single-epoch
/// consistency while the main thread commits `writes` churn steps.
fn stress(engine: Engine, program_src: &str, edb: &str, readers: usize, writes: u64) {
    let program = inflog_syntax::parse_program(program_src).unwrap();
    let db = DiGraph::cycle(5).to_database(edb);
    let n = db.universe_size() as u32;
    let dir = tmp_dir(&format!("stress_{engine:?}_{readers}"));
    let opts = ServeOptions {
        engine,
        max_inflight: readers + 2,
        ..ServeOptions::default()
    };
    let server = Arc::new(Server::create(&program, &db, &dir, &opts).unwrap());

    let goal_srcs: &[&str] = if edb == "E" {
        &["S(x, y)", "S('v0', y)", "E(x, y)"]
    } else {
        &["Win(x)", "Win('v0')", "Move(x, y)"]
    };
    let goals: Vec<_> = goal_srcs.iter().map(|s| parse_atom(s).unwrap()).collect();

    let done = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            let acked = Arc::clone(&acked);
            let goals = goals.clone();
            std::thread::spawn(move || {
                let qopts = QueryOpts::default();
                let mut checked = 0u64;
                let mut last_epoch = 0u64;
                while !done.load(Ordering::SeqCst) || checked == 0 {
                    let goal = &goals[(checked as usize + r) % goals.len()];
                    let reply = match server.query(goal, None) {
                        Ok(reply) => reply,
                        Err(e) => panic!("reader {r}: {e}"),
                    };
                    let epoch = reply.epoch.number();
                    // Epochs are published monotonically: no reader ever
                    // travels back in time, and no reply cites an epoch
                    // beyond the writer's last ack at pin time (checked
                    // loosely: acked only grows).
                    assert!(
                        epoch >= last_epoch,
                        "reader {r}: epoch went backwards ({last_epoch} -> {epoch})"
                    );
                    last_epoch = epoch;
                    // Writes here are synchronous, so at most one commit can
                    // be published but not yet recorded as acked.
                    assert!(
                        epoch <= acked.load(Ordering::SeqCst) + 1,
                        "reader {r}: reply from unacked epoch {epoch}"
                    );
                    // The oracle: the scan over the pinned epoch must equal
                    // a from-scratch magic-sets/well-founded evaluation of
                    // that same epoch's EDB. Any cross-epoch mixing breaks
                    // this determinism check.
                    let scratch = reply.epoch.query(goal, &qopts).unwrap();
                    assert_eq!(
                        reply.answer.tuples, scratch.tuples,
                        "reader {r}: pinned scan diverged from recompute at epoch {epoch}"
                    );
                    assert_eq!(
                        reply.answer.undefined, scratch.undefined,
                        "reader {r}: undefined set diverged at epoch {epoch}"
                    );
                    checked += 1;
                }
                // Full-model oracle once per reader on its final pin.
                assert!(
                    reply_matches_recompute(&server),
                    "reader {r}: final epoch fails matches_recompute"
                );
                checked
            })
        })
        .collect();

    for i in 1..=writes {
        let t = churn_fact(i, n);
        let fact = (edb.to_string(), t.clone());
        let ack = if server.pin().contains(edb, &t).unwrap() != inflog_eval::Truth::False {
            server.retract(vec![fact]).unwrap()
        } else {
            server.insert(vec![fact]).unwrap()
        };
        assert_eq!(ack.epoch, i, "writer acks must be sequential");
        acked.store(ack.epoch, Ordering::SeqCst);
    }
    done.store(true, Ordering::SeqCst);
    let mut total = 0;
    for h in handles {
        total += h.join().expect("reader thread panicked");
    }
    assert!(total > 0, "no replies were checked");
    assert_eq!(server.epoch(), writes);
    server.shutdown();
}

fn reply_matches_recompute(server: &Server) -> bool {
    server
        .pin()
        .matches_recompute(&EvalOptions::default())
        .unwrap()
}

#[test]
fn snapshot_isolation_2_readers() {
    stress(Engine::Stratified, TC, "E", 2, 24);
}

#[test]
fn snapshot_isolation_4_readers() {
    stress(Engine::Stratified, TC, "E", 4, 24);
}

#[test]
fn snapshot_isolation_8_readers() {
    stress(Engine::WellFounded, WIN, "Move", 8, 16);
}
