//! `serve` — the inflog serving binary.
//!
//! REPL mode (default): reads protocol lines from stdin, writes replies to
//! stdout. TCP mode (`--listen ADDR`): accepts concurrent connections,
//! one thread each, and prints `inflog-serve listening on <addr>` so a
//! parent process can parse the bound port (use port 0 for an ephemeral
//! one).
//!
//! ```text
//! serve --store DIR --program FILE [--create [--facts FILE] [--universe a,b,c]]
//!       [--listen ADDR] [--engine E] [--deadline-ms N]
//!       [--max-inflight N] [--writer-queue N]
//! ```
//!
//! `--create` evaluates the program over the facts file (one ground atom
//! per line, `#` comments) and initializes the store directory; without it
//! the directory is recovered (newest snapshot + WAL replay). Set
//! `INFLOG_SERVE_ABORT=1` to make crash-shaped failpoints abort the whole
//! process (the chaos harness does).

use inflog_core::Database;
use inflog_eval::materialize::Engine;
use inflog_serve::{serve_session, ServeOptions, Server};
use inflog_syntax::{parse_program, Program, Term};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    store: String,
    program: String,
    create: bool,
    facts: Option<String>,
    universe: Vec<String>,
    listen: Option<String>,
    opts: ServeOptions,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve --store DIR --program FILE \
         [--create [--facts FILE] [--universe a,b,c]] [--listen ADDR] \
         [--engine seminaive|inflationary|stratified|well-founded] \
         [--deadline-ms N] [--max-inflight N] [--writer-queue N]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        store: String::new(),
        program: String::new(),
        create: false,
        facts: None,
        universe: Vec::new(),
        listen: None,
        opts: ServeOptions {
            abort_on_crash: std::env::var("INFLOG_SERVE_ABORT").as_deref() == Ok("1"),
            ..ServeOptions::default()
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| {
                eprintln!("serve: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--create" => args.create = true,
            "--store" => args.store = value("--store")?,
            "--program" => args.program = value("--program")?,
            "--facts" => args.facts = Some(value("--facts")?),
            "--universe" => args
                .universe
                .extend(value("--universe")?.split(',').map(str::to_string)),
            "--listen" => args.listen = Some(value("--listen")?),
            "--engine" => {
                args.opts.engine = match value("--engine")?.as_str() {
                    "seminaive" => Engine::Seminaive,
                    "inflationary" => Engine::Inflationary,
                    "stratified" => Engine::Stratified,
                    "well-founded" => Engine::WellFounded,
                    other => {
                        eprintln!("serve: unknown engine {other:?}");
                        return Err(usage());
                    }
                }
            }
            "--deadline-ms" => {
                args.opts.query_deadline = Some(Duration::from_millis(parse_num(
                    "--deadline-ms",
                    &value("--deadline-ms")?,
                )?))
            }
            "--max-inflight" => {
                args.opts.max_inflight =
                    parse_num("--max-inflight", &value("--max-inflight")?)? as usize
            }
            "--writer-queue" => {
                args.opts.writer_queue =
                    parse_num("--writer-queue", &value("--writer-queue")?)? as usize
            }
            other => {
                eprintln!("serve: unknown flag {other:?}");
                return Err(usage());
            }
        }
    }
    if args.store.is_empty() || args.program.is_empty() {
        eprintln!("serve: --store and --program are required");
        return Err(usage());
    }
    Ok(args)
}

fn parse_num(name: &str, raw: &str) -> Result<u64, ExitCode> {
    raw.parse().map_err(|_| {
        eprintln!("serve: bad {name} value {raw:?}");
        usage()
    })
}

fn fail(context: &str, err: impl std::fmt::Display) -> ExitCode {
    eprintln!("serve: {context}: {err}");
    ExitCode::FAILURE
}

/// Builds the initial database: EDB relations declared from the program's
/// body-only predicates get their facts from the facts file; `--universe`
/// pre-interns extra constants so later writes can mention them.
fn initial_db(program: &Program, args: &Args) -> Result<Database, ExitCode> {
    let mut db = Database::new();
    for name in &args.universe {
        db.universe_mut().intern(name);
    }
    let Some(path) = &args.facts else {
        return Ok(db);
    };
    let text = std::fs::read_to_string(path).map_err(|e| fail(path, e))?;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let atom = inflog_syntax::parse_atom(line)
            .map_err(|e| fail(&format!("{path}:{}", lineno + 1), e))?;
        let mut consts = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            match term {
                Term::Const(c) => consts.push(c.as_str()),
                Term::Var(v) => {
                    return Err(fail(
                        &format!("{path}:{}", lineno + 1),
                        format!("facts must be ground; found variable {v:?}"),
                    ))
                }
            }
        }
        db.insert_named_fact(&atom.predicate, &consts)
            .map_err(|e| fail(&format!("{path}:{}", lineno + 1), e))?;
    }
    // Declare any EDB predicate the program scans but the facts left empty.
    let _ = program; // arities come from the facts; program validation runs in eval
    Ok(db)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let src = match std::fs::read_to_string(&args.program) {
        Ok(s) => s,
        Err(e) => return fail(&args.program, e),
    };
    let program = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => return fail(&args.program, e),
    };
    let dir = std::path::Path::new(&args.store);
    let server = if args.create {
        let db = match initial_db(&program, &args) {
            Ok(db) => db,
            Err(code) => return code,
        };
        Server::create(&program, &db, dir, &args.opts)
    } else {
        Server::open(&program, dir, &args.opts)
    };
    let server = match server {
        Ok(s) => Arc::new(s),
        Err(e) => return fail(&args.store, e),
    };

    match &args.listen {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let outcome = serve_session(&server, stdin.lock(), stdout.lock());
            match outcome {
                Ok(o) => {
                    if o.shutdown {
                        server.shutdown();
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail("session", e),
            }
        }
        Some(addr) => serve_tcp(&server, addr),
    }
}

fn serve_tcp(server: &Arc<Server>, addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => return fail(addr, e),
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => return fail(addr, e),
    };
    println!("inflog-serve listening on {local}");
    let _ = std::io::stdout().flush();
    if let Err(e) = listener.set_nonblocking(true) {
        return fail(addr, e);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut sessions = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(server);
                let stop = Arc::clone(&stop);
                let handle = std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(s) => BufReader::new(s),
                        Err(_) => return,
                    };
                    let writer = BufWriter::new(stream);
                    // A dropped connection mid-reply is an io::Error here;
                    // the thread ends and the server keeps serving.
                    if let Ok(outcome) = serve_session(&server, reader, writer) {
                        if outcome.shutdown {
                            stop.store(true, Ordering::SeqCst);
                        }
                    }
                });
                sessions.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return fail("accept", e),
        }
        sessions.retain(|h| !h.is_finished());
    }
    // Drain: joined sessions first (they may still be mid-reply), then the
    // server's own writer queue and in-flight readers.
    for handle in sessions {
        let _ = handle.join();
    }
    server.shutdown();
    ExitCode::SUCCESS
}
