//! The serving core: one durable writer thread, many snapshot-isolated
//! readers, and admission control in front of both.
//!
//! # Epoch publication (the invariant this module maintains)
//!
//! The writer thread exclusively owns the
//! [`DurableMaterialized`](inflog_eval::DurableMaterialized) handle. A
//! write batch commits through the log-first durable path (WAL append →
//! transactional in-memory repair), and only a *committed* state is
//! captured into an immutable [`Epoch`] and swapped into the
//! [`EpochCell`] — then the write is acknowledged. A failed batch rolls
//! back bit-identically and publishes nothing, so readers can never
//! observe a partial fixpoint: every pinned epoch is a committed one, and
//! (per the paper) the uniquely determined model of its own EDB.
//!
//! # Degradation ladder
//!
//! - Reads over capacity → typed [`ServeError::Overloaded`] shed.
//! - Writer queue full → typed shed; the queue is a bounded
//!   `sync_channel`, so backpressure is explicit and nothing queues
//!   unboundedly.
//! - Reader panic → contained per request ([`catch_unwind`]), reported as
//!   [`ServeError::ReaderPanic`].
//! - Slow query → cancelled at its deadline with a typed budget error.
//! - Writer failure → the batch rolls back, the record is un-logged, the
//!   published epoch is untouched, and the writer keeps serving. A
//!   crash-shaped failpoint kills the writer instead; reads continue on
//!   the last published epoch and writes report
//!   [`ServeError::WriterDown`].
//! - Shutdown → no new admissions, queued writes drain, in-flight reads
//!   finish, then the writer joins.

use crate::error::{Load, ServeError};
use crate::failpoints::{Failpoints, SITE_EPOCH_PUBLISH, SITE_QUEUE_FULL, SITE_WRITER_CRASH};
use inflog_core::{Database, Tuple};
use inflog_eval::materialize::Engine;
use inflog_eval::query::QueryAnswer;
use inflog_eval::{Durability, DurableMaterialized, DurableOpts, Epoch, EpochCell, EvalOptions};
use inflog_syntax::{Atom, Program};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The semantics to maintain.
    pub engine: Engine,
    /// Evaluation options for the initial run and every repair.
    pub eval: EvalOptions,
    /// WAL durability of the underlying store.
    pub durability: Durability,
    /// Admission bound on concurrently executing queries; the
    /// `max_inflight + 1`-th concurrent query sheds with
    /// [`ServeError::Overloaded`]`(`[`Load::Readers`]`)`.
    pub max_inflight: usize,
    /// Capacity of the bounded writer queue; a full queue sheds with
    /// [`ServeError::Overloaded`]`(`[`Load::Writer`]`)`.
    pub writer_queue: usize,
    /// Default per-query deadline (individual requests can override).
    pub query_deadline: Option<Duration>,
    /// Serve-layer chaos sites (inert by default in code; the environment
    /// arms them via `INFLOG_FAILPOINT`).
    pub failpoints: Failpoints,
    /// Store-layer crash sites, passed through to the durable store.
    pub store_failpoints: inflog_store::Failpoints,
    /// When true, crash-shaped failpoints (`serve-writer-crash`,
    /// `serve-epoch-publish`) abort the whole process instead of killing
    /// only the writer thread — the subprocess chaos harness uses this to
    /// die inside an exact protocol window.
    pub abort_on_crash: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            engine: Engine::default(),
            eval: EvalOptions::default(),
            durability: Durability::default(),
            max_inflight: 64,
            writer_queue: 16,
            query_deadline: None,
            failpoints: Failpoints::from_env(),
            store_failpoints: inflog_store::Failpoints::from_env(),
            abort_on_crash: false,
        }
    }
}

impl ServeOptions {
    /// Defaults with both failpoint registries explicitly inert, regardless
    /// of the environment — for embedders (benches, examples) that must
    /// never inherit an `INFLOG_FAILPOINT` arming from a CI chaos pass.
    #[must_use]
    pub fn quiet() -> Self {
        ServeOptions {
            failpoints: Failpoints::none(),
            store_failpoints: inflog_store::Failpoints::none(),
            ..ServeOptions::default()
        }
    }

    fn durable(&self) -> DurableOpts {
        DurableOpts {
            engine: self.engine,
            eval: self.eval.clone(),
            durability: self.durability,
            store_failpoints: self.store_failpoints.clone(),
        }
    }
}

/// Acknowledgement of a committed (durable, applied, *and published*)
/// write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// The epoch this write committed as — published before the ack.
    pub epoch: u64,
    /// Tuples the batch actually changed (0 for a committed no-op).
    pub changed: usize,
}

/// A query answer together with the pinned epoch it was answered from.
#[derive(Debug)]
pub struct QueryReply {
    /// The epoch the reply is consistent with — kept pinned by this handle.
    pub epoch: Arc<Epoch>,
    /// The goal-matching tuples (see [`Epoch::select`]).
    pub answer: QueryAnswer,
}

enum WriteCmd {
    Insert(Vec<(String, Tuple)>),
    Retract(Vec<(String, Tuple)>),
    Compact,
}

struct WriteReq {
    cmd: WriteCmd,
    reply: SyncSender<Result<WriteAck, ServeError>>,
}

struct Shared {
    cell: EpochCell,
    inflight: AtomicUsize,
    max_inflight: usize,
    draining: AtomicBool,
    writer_alive: AtomicBool,
    failpoints: Failpoints,
    query_deadline: Option<Duration>,
}

/// The serving handle: share it (`Arc<Server>`) across connection
/// threads. See the module docs for the guarantees.
pub struct Server {
    shared: Arc<Shared>,
    tx: Mutex<Option<SyncSender<WriteReq>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("epoch", &self.shared.cell.number())
            .field("inflight", &self.shared.inflight.load(Ordering::Relaxed))
            .field("draining", &self.shared.draining.load(Ordering::Relaxed))
            .finish()
    }
}

/// RAII admission permit; dropping it frees the in-flight slot.
struct Permit<'a>(&'a AtomicUsize);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Evaluates `program` over `db`, initializes the store directory, and
    /// starts serving at epoch 0.
    ///
    /// # Errors
    /// Construction errors of
    /// [`DurableMaterialized::create`](DurableMaterialized::create).
    pub fn create(
        program: &Program,
        db: &Database,
        dir: &Path,
        opts: &ServeOptions,
    ) -> Result<Server, ServeError> {
        let dm = DurableMaterialized::create(program, db, dir, &opts.durable())?;
        Server::start(dm, opts)
    }

    /// Recovers the store directory (newest snapshot + WAL replay) and
    /// starts serving at the recovered epoch.
    ///
    /// # Errors
    /// Recovery errors of
    /// [`DurableMaterialized::open`](DurableMaterialized::open) — typed,
    /// with the corrupt byte offset where applicable.
    pub fn open(program: &Program, dir: &Path, opts: &ServeOptions) -> Result<Server, ServeError> {
        let dm = DurableMaterialized::open(program, dir, &opts.durable())?;
        Server::start(dm, opts)
    }

    fn start(dm: DurableMaterialized, opts: &ServeOptions) -> Result<Server, ServeError> {
        let first = dm.publish()?;
        let shared = Arc::new(Shared {
            cell: EpochCell::new(first),
            inflight: AtomicUsize::new(0),
            max_inflight: opts.max_inflight.max(1),
            draining: AtomicBool::new(false),
            writer_alive: AtomicBool::new(true),
            failpoints: opts.failpoints.clone(),
            query_deadline: opts.query_deadline,
        });
        let (tx, rx) = mpsc::sync_channel(opts.writer_queue.max(1));
        let writer_shared = Arc::clone(&shared);
        let abort = opts.abort_on_crash;
        let writer = std::thread::Builder::new()
            .name("inflog-serve-writer".to_string())
            .spawn(move || writer_loop(dm, rx, writer_shared, abort))
            .expect("spawn writer thread");
        Ok(Server {
            shared,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        })
    }

    /// Pins the currently published epoch (see [`EpochCell::pin`]): the
    /// snapshot stays answerable — and identical — for as long as the
    /// handle lives, regardless of concurrent commits.
    pub fn pin(&self) -> Arc<Epoch> {
        self.shared.cell.pin()
    }

    /// The currently published epoch number.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.number()
    }

    /// The configured default query deadline.
    pub fn query_deadline(&self) -> Option<Duration> {
        self.shared.query_deadline
    }

    /// Whether the writer thread is still serving writes.
    pub fn writer_alive(&self) -> bool {
        self.shared.writer_alive.load(Ordering::SeqCst)
    }

    /// Whether the server is draining for shutdown.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Currently executing queries (observability for the admission
    /// tests).
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// The serve-layer failpoints handle (the connection layer fires the
    /// reply-drop site through it).
    pub fn failpoints(&self) -> &Failpoints {
        &self.shared.failpoints
    }

    /// Answers `goal` from the epoch current at admission: admission
    /// check, pin, scan ([`Epoch::select`]) under `deadline` (falling back
    /// to the server default), panic containment.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] / [`ServeError::ShuttingDown`] at
    /// admission; [`ServeError::ReaderPanic`] for a contained panic;
    /// evaluation errors (including the deadline trip) as
    /// [`ServeError::Eval`].
    pub fn query(&self, goal: &Atom, deadline: Option<Duration>) -> Result<QueryReply, ServeError> {
        self.query_at(goal, deadline.or(self.shared.query_deadline))
    }

    /// Like [`Server::query`] but applies `deadline` verbatim — `None`
    /// really means unbounded, without falling back to the server default.
    /// The connection layer uses this so `DEADLINE off` can clear a
    /// configured default.
    ///
    /// # Errors
    /// Same conditions as [`Server::query`].
    pub fn query_at(
        &self,
        goal: &Atom,
        deadline: Option<Duration>,
    ) -> Result<QueryReply, ServeError> {
        if self.is_draining() {
            return Err(ServeError::ShuttingDown);
        }
        let _permit = self.admit()?;
        let epoch = self.pin();
        let deadline = deadline.map(|d| Instant::now() + d);
        match catch_unwind(AssertUnwindSafe(|| epoch.select(goal, deadline))) {
            Ok(Ok(answer)) => Ok(QueryReply { epoch, answer }),
            Ok(Err(e)) => Err(ServeError::Eval(e)),
            Err(payload) => Err(ServeError::ReaderPanic {
                message: panic_message(&payload),
            }),
        }
    }

    /// Durably inserts a batch and publishes the resulting epoch. Blocks
    /// only while the *admitted* write commits; admission itself never
    /// blocks (a full queue sheds).
    ///
    /// # Errors
    /// [`ServeError::Overloaded`]`(`[`Load::Writer`]`)` when the queue is
    /// full, [`ServeError::WriterDown`] / [`ServeError::ShuttingDown`]
    /// when nobody will serve the write, and the writer's typed commit
    /// errors otherwise (state rolled back, epoch untouched).
    pub fn insert(&self, facts: Vec<(String, Tuple)>) -> Result<WriteAck, ServeError> {
        self.write(WriteCmd::Insert(facts))
    }

    /// Durable retract; same contract as [`Server::insert`].
    ///
    /// # Errors
    /// Same conditions as [`Server::insert`].
    pub fn retract(&self, facts: Vec<(String, Tuple)>) -> Result<WriteAck, ServeError> {
        self.write(WriteCmd::Retract(facts))
    }

    /// Compacts the store (snapshot + WAL truncation) through the writer.
    ///
    /// # Errors
    /// Same admission conditions as [`Server::insert`]; store errors from
    /// the compaction itself.
    pub fn compact(&self) -> Result<WriteAck, ServeError> {
        self.write(WriteCmd::Compact)
    }

    fn write(&self, cmd: WriteCmd) -> Result<WriteAck, ServeError> {
        if self.is_draining() {
            return Err(ServeError::ShuttingDown);
        }
        if !self.writer_alive() {
            return Err(ServeError::WriterDown);
        }
        if self.shared.failpoints.fire(SITE_QUEUE_FULL) {
            return Err(ServeError::Overloaded(Load::Writer));
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        {
            let guard = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(tx) = guard.as_ref() else {
                return Err(ServeError::ShuttingDown);
            };
            match tx.try_send(WriteReq {
                cmd,
                reply: reply_tx,
            }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => return Err(ServeError::Overloaded(Load::Writer)),
                Err(TrySendError::Disconnected(_)) => return Err(ServeError::WriterDown),
            }
        }
        // The writer dropping our reply sender without answering (crash
        // window) surfaces as a typed WriterDown, never a hang.
        reply_rx.recv().map_err(|_| ServeError::WriterDown)?
    }

    fn admit(&self) -> Result<Permit<'_>, ServeError> {
        let prev = self.shared.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.shared.max_inflight {
            self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::Overloaded(Load::Readers));
        }
        Ok(Permit(&self.shared.inflight))
    }

    /// Graceful drain: stop admitting, let the writer drain every queued
    /// request, join it, and wait for in-flight readers to finish.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Dropping the sender ends the writer's receive loop *after* the
        // buffered requests drain (sync_channel delivers queued messages
        // before reporting disconnection).
        drop(
            self.tx
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        if let Some(writer) = self
            .writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = writer.join();
        }
        while self.shared.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn writer_loop(
    mut dm: DurableMaterialized,
    rx: Receiver<WriteReq>,
    shared: Arc<Shared>,
    abort_on_crash: bool,
) {
    while let Ok(WriteReq { cmd, reply }) = rx.recv() {
        let keep_going = match cmd {
            WriteCmd::Compact => {
                let res = dm
                    .compact()
                    .map(|()| WriteAck {
                        epoch: dm.epoch(),
                        changed: 0,
                    })
                    .map_err(ServeError::from);
                let _ = reply.send(res);
                true
            }
            WriteCmd::Insert(facts) => {
                apply(&mut dm, &shared, abort_on_crash, true, &facts, &reply)
            }
            WriteCmd::Retract(facts) => {
                apply(&mut dm, &shared, abort_on_crash, false, &facts, &reply)
            }
        };
        if !keep_going {
            break;
        }
    }
    shared.writer_alive.store(false, Ordering::SeqCst);
}

/// One write batch through the durable path; returns false when the
/// writer must die (crash-shaped failpoints and unpublishable states).
fn apply(
    dm: &mut DurableMaterialized,
    shared: &Shared,
    abort_on_crash: bool,
    inserting: bool,
    facts: &[(String, Tuple)],
    reply: &SyncSender<Result<WriteAck, ServeError>>,
) -> bool {
    if shared.failpoints.fire(SITE_WRITER_CRASH) {
        // Dies before the WAL append: nothing of this batch survives, so
        // recovery restores exactly the last acked epoch. The alive flag
        // drops before the reply so the caller observes a dead writer.
        if abort_on_crash {
            std::process::abort();
        }
        shared.writer_alive.store(false, Ordering::SeqCst);
        let _ = reply.send(Err(ServeError::FaultInjected {
            site: SITE_WRITER_CRASH.to_string(),
        }));
        return false;
    }
    let borrowed: Vec<(&str, Tuple)> = facts
        .iter()
        .map(|(name, t)| (name.as_str(), t.clone()))
        .collect();
    let applied = if inserting {
        dm.insert(&borrowed)
    } else {
        dm.retract(&borrowed)
    };
    match applied {
        Err(e) => {
            // The transactional path already rolled the state back (and
            // un-logged the record); the published epoch was never
            // touched. Degrade gracefully: report and keep serving.
            let _ = reply.send(Err(ServeError::Eval(e)));
            true
        }
        Ok(changed) => {
            if shared.failpoints.fire(SITE_EPOCH_PUBLISH) {
                // Dies between WAL ack and epoch swap: the record is
                // durable but the client never sees an ack, so recovery
                // may land one epoch past the last acked one — the chaos
                // harness accepts exactly that window.
                if abort_on_crash {
                    std::process::abort();
                }
                shared.writer_alive.store(false, Ordering::SeqCst);
                let _ = reply.send(Err(ServeError::FaultInjected {
                    site: SITE_EPOCH_PUBLISH.to_string(),
                }));
                return false;
            }
            match dm.publish() {
                Ok(epoch) => {
                    shared.cell.publish(epoch);
                    let _ = reply.send(Ok(WriteAck {
                        epoch: dm.epoch(),
                        changed,
                    }));
                    true
                }
                Err(e) => {
                    // Committed but unpublishable (practically
                    // unreachable): serving a stale epoch as if current
                    // would break the invariant, so the writer dies.
                    shared.writer_alive.store(false, Ordering::SeqCst);
                    let _ = reply.send(Err(ServeError::Eval(e)));
                    false
                }
            }
        }
    }
}
