//! # inflog-serve — epoch-snapshot serving layer
//!
//! A long-lived server over a durable materialized DATALOG¬ fixpoint
//! ([`inflog_eval::DurableMaterialized`]): concurrent snapshot-isolated
//! readers, a single durable writer, admission control, and typed graceful
//! degradation — chaos-tested against crash windows.
//!
//! ## The epoch-publication invariant
//!
//! All reads are answered from an immutable
//! [`Epoch`](inflog_eval::Epoch) — a committed fixpoint (the materialized
//! model, its EDB, and its warmed index set) behind an `Arc`. The single
//! writer commits each batch through the log-first durable path (WAL
//! append → transactional repair) and **only then** swaps the new epoch
//! into the [`EpochCell`](inflog_eval::EpochCell) and acknowledges the
//! client. Readers pin the current epoch with an `Arc` clone and keep it
//! for the whole request, so:
//!
//! - every reply is consistent with exactly one committed epoch — never a
//!   mix of two, never a partially applied write;
//! - an acked write is durable *and* visible to every later pin;
//! - old epochs are freed automatically when their last reader drops
//!   (plain `Arc` reclamation — no epoch list, no GC thread).
//!
//! Because every semantics in this workspace is a *deterministic* function
//! of the EDB (the paper's Sections 2–4 models are uniquely determined),
//! any violation is mechanically checkable: re-evaluating a pinned epoch's
//! own EDB from scratch must reproduce its materialized model bit for bit
//! ([`Epoch::matches_recompute`](inflog_eval::Epoch::matches_recompute)).
//! The stress and chaos tests lean on exactly that oracle.
//!
//! ## Degradation, not failure
//!
//! Overload sheds with typed [`ServeError::Overloaded`] (bounded in-flight
//! readers, bounded writer queue with backpressure); reader panics are
//! contained per request; slow queries are cancelled at their deadline;
//! writer failures roll back transactionally without disturbing the
//! published epoch; shutdown drains. Chaos sites (`serve-writer-crash`,
//! `serve-epoch-publish`, `serve-queue-full`, `serve-reply-drop`) inject
//! crashes into the exact protocol windows — see [`failpoints`].
//!
//! ## Protocol
//!
//! [`proto`] documents the line protocol; [`conn::serve_session`] runs it
//! over any `BufRead`/`Write` pair; the `serve` binary wires it to stdin
//! (REPL) or a TCP listener.

pub mod conn;
pub mod error;
pub mod failpoints;
pub mod proto;
pub mod server;

pub use conn::{serve_session, SessionOutcome};
pub use error::{Load, ServeError};
pub use failpoints::{
    Failpoints, SERVE_FAILPOINT_SITES, SITE_EPOCH_PUBLISH, SITE_QUEUE_FULL, SITE_REPLY_DROP,
    SITE_WRITER_CRASH,
};
pub use proto::{parse_request, render_error, render_tuple, Request};
pub use server::{QueryReply, ServeOptions, Server, WriteAck};
