//! One client session over any line-oriented transport (TCP socket,
//! stdin/stdout REPL, or an in-memory pipe in tests).
//!
//! Each request is handled under its own `catch_unwind`, so a panic in the
//! protocol layer closes *this* connection with a final `ERR panic` line
//! and leaves the server — and every other connection — serving.

use crate::error::ServeError;
use crate::failpoints::SITE_REPLY_DROP;
use crate::proto::{parse_request, render_error, render_tuple, Request};
use crate::server::Server;
use inflog_core::Tuple;
use inflog_syntax::{Atom, Term};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOutcome {
    /// True when the client requested `SHUTDOWN` — the caller (the binary's
    /// accept loop) should drain and stop the server.
    pub shutdown: bool,
}

enum Flow {
    Continue,
    /// Close this connection without touching the server (mid-reply drops).
    CloseConn,
    /// Propagate a shutdown request to the caller.
    Shutdown,
}

/// Runs one session: reads request lines from `input`, writes reply lines
/// to `out`, until EOF, a dropped connection, or `SHUTDOWN`. Blank lines
/// and `#` comments are ignored (so scripted sessions can be commented).
///
/// # Errors
/// Only transport-level `io::Error`s; every protocol- and serving-layer
/// failure is rendered into the reply stream instead.
pub fn serve_session<R: BufRead, W: Write>(
    server: &Server,
    input: R,
    mut out: W,
) -> io::Result<SessionOutcome> {
    // Per-connection deadline override, seeded from the server default.
    let mut deadline = server.query_deadline();
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let flow = match catch_unwind(AssertUnwindSafe(|| {
            handle_line(server, trimmed, &mut deadline, &mut out)
        })) {
            Ok(flow) => flow?,
            Err(_) => {
                writeln!(
                    out,
                    "ERR panic: request handler panicked; closing connection"
                )?;
                out.flush()?;
                return Ok(SessionOutcome { shutdown: false });
            }
        };
        out.flush()?;
        match flow {
            Flow::Continue => {}
            Flow::CloseConn => return Ok(SessionOutcome { shutdown: false }),
            Flow::Shutdown => return Ok(SessionOutcome { shutdown: true }),
        }
    }
    Ok(SessionOutcome { shutdown: false })
}

fn handle_line<W: Write>(
    server: &Server,
    line: &str,
    deadline: &mut Option<Duration>,
    out: &mut W,
) -> io::Result<Flow> {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            writeln!(out, "{}", render_error(&e))?;
            return Ok(Flow::Continue);
        }
    };
    match request {
        Request::Ping => writeln!(out, "OK pong")?,
        Request::Epoch => writeln!(out, "OK epoch={}", server.epoch())?,
        Request::Deadline(ms) => {
            *deadline = ms.map(Duration::from_millis);
            match ms {
                Some(ms) => writeln!(out, "OK deadline={ms}")?,
                None => writeln!(out, "OK deadline=off")?,
            }
        }
        Request::Query(goal) => return query(server, &goal, *deadline, out),
        Request::Insert(atom) => write_fact(server, &atom, true, out)?,
        Request::Retract(atom) => write_fact(server, &atom, false, out)?,
        Request::Compact => match server.compact() {
            Ok(ack) => writeln!(out, "OK epoch={} changed={}", ack.epoch, ack.changed)?,
            Err(e) => writeln!(out, "{}", render_error(&e))?,
        },
        Request::Shutdown => {
            writeln!(out, "OK draining")?;
            return Ok(Flow::Shutdown);
        }
    }
    Ok(Flow::Continue)
}

fn query<W: Write>(
    server: &Server,
    goal: &Atom,
    deadline: Option<Duration>,
    out: &mut W,
) -> io::Result<Flow> {
    let reply = match server.query_at(goal, deadline) {
        Ok(reply) => reply,
        Err(e) => {
            writeln!(out, "{}", render_error(&e))?;
            return Ok(Flow::Continue);
        }
    };
    writeln!(out, "EPOCH {}", reply.epoch.number())?;
    if server.failpoints().fire(SITE_REPLY_DROP) {
        // Chaos: the connection dies mid-reply, after the epoch header but
        // before the tuples. The flush makes the torn reply observable.
        out.flush()?;
        return Ok(Flow::CloseConn);
    }
    let universe = reply.epoch.database().universe();
    for t in &reply.answer.tuples {
        writeln!(out, "TRUE {}", render_tuple(universe, &goal.predicate, t))?;
    }
    for t in &reply.answer.undefined {
        writeln!(out, "UNDEF {}", render_tuple(universe, &goal.predicate, t))?;
    }
    writeln!(
        out,
        "OK true={} undef={}",
        reply.answer.tuples.len(),
        reply.answer.undefined.len()
    )?;
    Ok(Flow::Continue)
}

fn write_fact<W: Write>(
    server: &Server,
    atom: &Atom,
    inserting: bool,
    out: &mut W,
) -> io::Result<()> {
    let fact = match ground(server, atom) {
        Ok(f) => f,
        Err(e) => {
            writeln!(out, "{}", render_error(&e))?;
            return Ok(());
        }
    };
    let result = if inserting {
        server.insert(vec![fact])
    } else {
        server.retract(vec![fact])
    };
    match result {
        Ok(ack) => writeln!(out, "OK epoch={} changed={}", ack.epoch, ack.changed),
        Err(e) => writeln!(out, "{}", render_error(&e)),
    }
}

/// Resolves a ground atom's constants against the published epoch's
/// universe. Writes cannot mint constants: the active-domain universe is
/// fixed at store creation (the paper's finite-structure setting), so an
/// unknown name is a typed error, not an intern.
fn ground(server: &Server, atom: &Atom) -> Result<(String, Tuple), ServeError> {
    let epoch = server.pin();
    let universe = epoch.database().universe();
    let mut consts = Vec::with_capacity(atom.terms.len());
    for term in &atom.terms {
        match term {
            Term::Const(name) => match universe.lookup(name) {
                Some(c) => consts.push(c),
                None => {
                    return Err(ServeError::Protocol {
                        detail: format!("unknown constant {name:?} in write"),
                    })
                }
            },
            Term::Var(v) => {
                return Err(ServeError::Protocol {
                    detail: format!("write atoms must be ground; found variable {v:?}"),
                })
            }
        }
    }
    Ok((atom.predicate.clone(), Tuple::from_slice(&consts)))
}
