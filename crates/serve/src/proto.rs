//! The line protocol: one request per line, one or more reply lines, the
//! last reply line always starting with `OK`, `ERR`, or `OVERLOADED`.
//!
//! Requests (keywords are case-insensitive, atoms use the DATALOG¬
//! concrete syntax with quoted constants):
//!
//! ```text
//! PING                        -> OK pong
//! EPOCH                       -> OK epoch=<n>
//! QUERY S('v0', y)            -> EPOCH <n>
//!                                TRUE S(v0, v1)        (0 or more)
//!                                UNDEF S(v0, v2)       (0 or more)
//!                                OK true=<a> undef=<b>
//! INSERT E('v3', 'v0')        -> OK epoch=<n> changed=<k>
//! RETRACT E('v3', 'v0')       -> OK epoch=<n> changed=<k>
//! COMPACT                     -> OK epoch=<n> changed=0
//! DEADLINE 50 | DEADLINE off  -> OK deadline=<ms|off>
//! SHUTDOWN                    -> OK draining
//! ```
//!
//! Failures: `ERR <code>: <detail>` (see [`ServeError::code`]); admission
//! sheds use the distinguished `OVERLOADED <readers|writer>` line so
//! clients can retry without parsing the error detail.

use crate::error::ServeError;
use inflog_core::{Tuple, Universe};
use inflog_syntax::{parse_atom, Atom};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Report the currently published epoch.
    Epoch,
    /// Answer the goal atom from a pinned epoch.
    Query(Atom),
    /// Durably insert a ground EDB fact and publish the new epoch.
    Insert(Atom),
    /// Durably retract a ground EDB fact and publish the new epoch.
    Retract(Atom),
    /// Compact the store (snapshot + truncate the WAL).
    Compact,
    /// Set (`Some(ms)`) or clear (`None`) this connection's query deadline.
    Deadline(Option<u64>),
    /// Drain and stop the server.
    Shutdown,
}

/// Parses one protocol line.
///
/// # Errors
/// [`ServeError::Protocol`] for an unknown keyword, a malformed atom, or a
/// malformed deadline.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let line = line.trim();
    let (keyword, rest) = match line.split_once(char::is_whitespace) {
        Some((k, r)) => (k, r.trim()),
        None => (line, ""),
    };
    let bare = |req: Request| {
        if rest.is_empty() {
            Ok(req)
        } else {
            Err(ServeError::Protocol {
                detail: format!("{} takes no argument", keyword.to_uppercase()),
            })
        }
    };
    match keyword.to_ascii_uppercase().as_str() {
        "PING" => bare(Request::Ping),
        "EPOCH" => bare(Request::Epoch),
        "COMPACT" => bare(Request::Compact),
        "SHUTDOWN" => bare(Request::Shutdown),
        "QUERY" => Ok(Request::Query(parse_goal(keyword, rest)?)),
        "INSERT" => Ok(Request::Insert(parse_goal(keyword, rest)?)),
        "RETRACT" => Ok(Request::Retract(parse_goal(keyword, rest)?)),
        "DEADLINE" => match rest {
            "" => Err(ServeError::Protocol {
                detail: "DEADLINE needs a millisecond count or `off`".to_string(),
            }),
            off if off.eq_ignore_ascii_case("off") => Ok(Request::Deadline(None)),
            ms => match ms.parse::<u64>() {
                Ok(ms) => Ok(Request::Deadline(Some(ms))),
                Err(_) => Err(ServeError::Protocol {
                    detail: format!("bad DEADLINE argument {ms:?} (want milliseconds or `off`)"),
                }),
            },
        },
        other => Err(ServeError::Protocol {
            detail: format!("unknown request {other:?}"),
        }),
    }
}

fn parse_goal(keyword: &str, rest: &str) -> Result<Atom, ServeError> {
    if rest.is_empty() {
        return Err(ServeError::Protocol {
            detail: format!("{} needs an atom argument", keyword.to_uppercase()),
        });
    }
    parse_atom(rest).map_err(|e| ServeError::Protocol {
        detail: format!("bad atom: {e}"),
    })
}

/// Renders a tuple as `pred(a, b)` using the universe's constant names.
pub fn render_tuple(universe: &Universe, pred: &str, t: &Tuple) -> String {
    let mut out = String::from(pred);
    out.push('(');
    for (i, c) in t.items().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&universe.display(*c));
    }
    out.push(')');
    out
}

/// Renders the final reply line for a failed request.
pub fn render_error(e: &ServeError) -> String {
    match e {
        ServeError::Overloaded(load) => format!("OVERLOADED {load}"),
        other => format!("ERR {}: {other}", other.code()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Load;
    use inflog_syntax::Term;

    #[test]
    fn parses_every_request_kind() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("  epoch  ").unwrap(), Request::Epoch);
        assert_eq!(parse_request("Compact").unwrap(), Request::Compact);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("DEADLINE 250").unwrap(),
            Request::Deadline(Some(250))
        );
        assert_eq!(
            parse_request("deadline OFF").unwrap(),
            Request::Deadline(None)
        );
        let q = parse_request("QUERY S('v0', y)").unwrap();
        match q {
            Request::Query(atom) => {
                assert_eq!(atom.predicate, "S");
                assert_eq!(atom.terms[0], Term::Const("v0".to_string()));
                assert_eq!(atom.terms[1], Term::Var("y".to_string()));
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request("INSERT E('a', 'b').").unwrap(),
            Request::Insert(_)
        ));
        assert!(matches!(
            parse_request("retract E('a', 'b')").unwrap(),
            Request::Retract(_)
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "FROBNICATE",
            "QUERY",
            "QUERY not an atom ((",
            "DEADLINE",
            "DEADLINE soon",
            "PING extra",
            "EPOCH 7",
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.code(), "protocol", "line {bad:?} gave {e}");
        }
    }

    #[test]
    fn error_rendering_distinguishes_sheds() {
        assert_eq!(
            render_error(&ServeError::Overloaded(Load::Readers)),
            "OVERLOADED readers"
        );
        assert_eq!(
            render_error(&ServeError::Overloaded(Load::Writer)),
            "OVERLOADED writer"
        );
        let e = ServeError::WriterDown;
        assert!(render_error(&e).starts_with("ERR writer-down: "));
    }
}
