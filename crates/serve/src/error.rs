//! Typed serving-layer errors — every degraded outcome the server can
//! produce is a value, never a hang and never an escaped panic.

use inflog_eval::{BudgetKind, EvalError};
use std::fmt;

/// Which bounded resource an [`ServeError::Overloaded`] shed names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Load {
    /// The in-flight query gauge is at `max_inflight`.
    Readers,
    /// The bounded writer queue is full.
    Writer,
}

impl fmt::Display for Load {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Load::Readers => write!(f, "readers"),
            Load::Writer => write!(f, "writer"),
        }
    }
}

/// Errors of the serving layer. `Overloaded` is a *shed*, not a failure:
/// the request was refused at admission so the server never queues
/// unboundedly; retrying later is expected to succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request (bounded in-flight queries or
    /// bounded writer queue).
    Overloaded(Load),
    /// The writer thread is gone (a crash-shaped failpoint or an
    /// unrecoverable publish failure). Reads keep serving the last
    /// published epoch; recover writes by reopening the store.
    WriterDown,
    /// The server is draining for shutdown; no new requests are admitted.
    ShuttingDown,
    /// A reader panicked answering this request. The panic was contained
    /// to the request (`catch_unwind`); the epoch and the server are
    /// untouched.
    ReaderPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A serve-layer failpoint fired (chaos harness only).
    FaultInjected {
        /// The site that fired.
        site: String,
    },
    /// An evaluation- or store-layer error (deadline trips surface as
    /// [`EvalError::BudgetExceeded`] with [`BudgetKind::Deadline`]).
    Eval(EvalError),
    /// A malformed protocol line.
    Protocol {
        /// What was wrong with it.
        detail: String,
    },
}

impl ServeError {
    /// Short machine-readable code used in `ERR <code>: ...` reply lines.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded(_) => "overloaded",
            ServeError::WriterDown => "writer-down",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::ReaderPanic { .. } => "panic",
            ServeError::FaultInjected { .. } => "fault",
            ServeError::Eval(EvalError::BudgetExceeded {
                kind: BudgetKind::Deadline,
                ..
            }) => "deadline",
            ServeError::Eval(_) => "eval",
            ServeError::Protocol { .. } => "protocol",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded(load) => write!(f, "overloaded: {load} at capacity"),
            ServeError::WriterDown => write!(f, "writer is down; reopen the store to recover"),
            ServeError::ShuttingDown => write!(f, "server is draining"),
            ServeError::ReaderPanic { message } => {
                write!(f, "reader panicked (contained): {message}")
            }
            ServeError::FaultInjected { site } => write!(f, "failpoint `{site}` fired"),
            ServeError::Eval(e) => write!(f, "{e}"),
            ServeError::Protocol { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> Self {
        ServeError::Eval(e)
    }
}

impl From<inflog_store::StoreError> for ServeError {
    fn from(e: inflog_store::StoreError) -> Self {
        ServeError::Eval(EvalError::from(e))
    }
}
