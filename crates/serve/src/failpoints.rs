//! Chaos-injection sites for the serving layer.
//!
//! Mirrors the store layer's `Failpoints` (crates/store/src/failpoints.rs):
//! all three layers read the same `INFLOG_FAILPOINT=<site>[:<n>]` variable
//! and each silently ignores the other layers' sites. The *registry*
//! constant [`SERVE_FAILPOINT_SITES`] lives in `inflog_eval::govern` so the
//! eval-side unknown-site diagnostic can enumerate every layer without a
//! dependency cycle; this module owns the sites' semantics:
//!
//! - [`SITE_EPOCH_PUBLISH`]: the writer dies *after* the WAL record is
//!   durable and applied but *before* the new epoch is swapped into the
//!   [`EpochCell`](inflog_eval::EpochCell) — the client never gets an ack,
//!   readers keep the old epoch, and recovery may legitimately land one
//!   epoch past the last acked one.
//! - [`SITE_QUEUE_FULL`]: write admission behaves as if the bounded writer
//!   queue were full — the caller must see a typed
//!   [`Overloaded`](crate::ServeError::Overloaded) shed, never a hang.
//! - [`SITE_REPLY_DROP`]: the connection drops mid-reply, after the
//!   `EPOCH` header but before the tuples — the server must survive and
//!   keep serving other connections.
//! - [`SITE_WRITER_CRASH`]: the writer dies *before* logging the batch —
//!   recovery must restore exactly the last acked epoch.

pub use inflog_eval::SERVE_FAILPOINT_SITES;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub const SITE_EPOCH_PUBLISH: &str = "serve-epoch-publish";
pub const SITE_QUEUE_FULL: &str = "serve-queue-full";
pub const SITE_REPLY_DROP: &str = "serve-reply-drop";
pub const SITE_WRITER_CRASH: &str = "serve-writer-crash";

#[derive(Debug)]
struct Armed {
    site: String,
    /// Fires on exactly the `trigger`-th hit of the site (1-based), once.
    trigger: u64,
    hits: AtomicU64,
}

/// A handle that is either inert or armed at one serve site. Clones share
/// the hit counter, so the same arming observed from several components
/// (admission path, writer thread, reply path) still fires exactly once.
#[derive(Debug, Clone, Default)]
pub struct Failpoints(Option<Arc<Armed>>);

impl Failpoints {
    /// No failpoint armed; every `fire` returns false.
    pub fn none() -> Self {
        Failpoints(None)
    }

    /// Arms `site` to fire on its `trigger`-th hit (1-based).
    ///
    /// Panics if `site` is not a registered serve site — tests should fail
    /// loudly on typos rather than silently never fire.
    pub fn armed(site: &str, trigger: u64) -> Self {
        assert!(
            SERVE_FAILPOINT_SITES.contains(&site),
            "unknown serve failpoint site {site:?} (registered: {SERVE_FAILPOINT_SITES:?})"
        );
        assert!(trigger >= 1, "failpoint trigger is 1-based");
        Failpoints(Some(Arc::new(Armed {
            site: site.to_string(),
            trigger,
            hits: AtomicU64::new(0),
        })))
    }

    /// Parses `INFLOG_FAILPOINT` from the environment. Sites of the other
    /// layers are ignored without a warning — the eval-side parser owns
    /// the unknown-site diagnostic.
    pub fn from_env() -> Self {
        match std::env::var("INFLOG_FAILPOINT") {
            Ok(raw) => Self::from_env_value(&raw),
            Err(_) => Failpoints::none(),
        }
    }

    /// Parses a `<site>[:<n>]` arming string; non-serve sites yield
    /// `none()`.
    pub fn from_env_value(raw: &str) -> Self {
        let (site, trigger) = match raw.trim().split_once(':') {
            Some((s, n)) => match n.trim().parse::<u64>() {
                Ok(n) if n >= 1 => (s.trim(), n),
                _ => return Failpoints::none(),
            },
            None => (raw.trim(), 1),
        };
        if SERVE_FAILPOINT_SITES.contains(&site) {
            Failpoints::armed(site, trigger)
        } else {
            Failpoints::none()
        }
    }

    /// Whether any site is armed.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// The armed site name, if any.
    pub fn site(&self) -> Option<&str> {
        self.0.as_deref().map(|a| a.site.as_str())
    }

    /// The armed 1-based trigger, if any — the chaos harness scales its
    /// pre-crash workload to it.
    pub fn trigger(&self) -> Option<u64> {
        self.0.as_deref().map(|a| a.trigger)
    }

    /// Records a hit of `site`; returns true exactly when this hit is the
    /// armed trigger (one-shot: later hits return false again).
    pub fn fire(&self, site: &str) -> bool {
        match &self.0 {
            Some(a) if a.site == site => {
                let hit = a.hits.fetch_add(1, Ordering::Relaxed) + 1;
                hit == a.trigger
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_site_names_are_registered() {
        for site in [
            SITE_EPOCH_PUBLISH,
            SITE_QUEUE_FULL,
            SITE_REPLY_DROP,
            SITE_WRITER_CRASH,
        ] {
            assert!(SERVE_FAILPOINT_SITES.contains(&site), "{site} unregistered");
        }
        assert_eq!(SERVE_FAILPOINT_SITES.len(), 4);
    }

    #[test]
    fn env_parsing_ignores_foreign_sites() {
        assert!(Failpoints::from_env_value("serve-queue-full").is_armed());
        assert!(Failpoints::from_env_value("serve-writer-crash:2").is_armed());
        assert!(!Failpoints::from_env_value("round").is_armed());
        assert!(!Failpoints::from_env_value("store-wal-bit-flip").is_armed());
        assert!(!Failpoints::from_env_value("no-such-site").is_armed());
    }

    #[test]
    fn fires_exactly_on_trigger_once() {
        let fp = Failpoints::armed(SITE_REPLY_DROP, 2);
        assert!(!fp.fire(SITE_REPLY_DROP));
        assert!(!fp.fire(SITE_QUEUE_FULL));
        assert!(fp.fire(SITE_REPLY_DROP));
        assert!(!fp.fire(SITE_REPLY_DROP));
    }
}
