//! # inflog — facade crate
//!
//! Re-exports the whole workspace under one roof. See the README for a tour.
//!
//! This workspace reproduces Kolaitis & Papadimitriou, *"Why Not Negation by
//! Fixpoint?"* (PODS 1988 / JCSS 1991): a DATALOG¬ engine with fixpoint
//! analysis (existence / uniqueness / least — Sections 2–3) and Inflationary
//! DATALOG (Section 4), plus every substrate the paper's constructions need.

pub use inflog_circuit as circuit;
pub use inflog_core as core;
pub use inflog_eval as eval;
pub use inflog_fixpoint as fixpoint;
pub use inflog_logic as logic;
pub use inflog_reductions as reductions;
pub use inflog_rewrite as rewrite;
pub use inflog_sat as sat;
pub use inflog_serve as serve;
pub use inflog_syntax as syntax;
